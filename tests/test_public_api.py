"""The public API surface: everything advertised in ``repro.__all__`` works."""

import numpy as np
import pytest

import repro


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_quickstart_actually_runs(self):
        cs = repro.random_well_nested(8, 32, np.random.default_rng(0))
        schedule = repro.PADRScheduler().schedule(cs)
        assert schedule.n_rounds == repro.width(cs)
        assert repro.verify_schedule(schedule, cs).ok


class TestEndToEndViaPublicNamesOnly:
    """A downstream user's workflow touching only re-exported names."""

    def test_generate_schedule_verify_compare(self):
        cset = repro.crossing_chain(4)
        comparison = repro.compare_schedulers(
            cset,
            [
                repro.PADRScheduler(),
                repro.RoyIDScheduler(),
                repro.GreedyScheduler("innermost"),
                repro.SequentialScheduler(),
            ],
        )
        rows = comparison.rows()
        assert len(rows) == 4
        csa = comparison.by_name("padr-csa")
        assert repro.check_round_optimality(csa, cset, require_optimal=True)

    def test_policy_selection(self):
        cset = repro.crossing_chain(8)
        rebuilt = repro.RoyIDScheduler().schedule(
            cset, policy=repro.PowerPolicy.rebuild()
        )
        lazy = repro.PADRScheduler().schedule(cset)
        assert rebuilt.power.max_switch_units == 8
        assert lazy.power.max_switch_units <= 3

    def test_srga_entry_point(self):
        grid = repro.SRGA(4, 8)
        result = grid.route(row_sets={0: repro.disjoint_pairs(2)})
        assert result.makespan == 1

    def test_mixed_orientation_entry_point(self):
        mixed = repro.CommunicationSet(
            [repro.Communication(0, 1), repro.Communication(3, 2)]
        )
        s = repro.OrientedDecompositionScheduler().schedule(mixed, n_leaves=8)
        assert repro.verify_schedule(s, mixed).ok

    def test_topology_and_network_exports(self):
        topo = repro.CSTTopology.of(8)
        net = repro.CSTNetwork(topo)
        assert len(net.switches) == topo.n_switches
