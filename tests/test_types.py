"""Unit tests for the core value types (ports, connections, roles)."""

import pytest

from repro.exceptions import IllegalConnectionError
from repro.types import (
    CONN_DOWN_L,
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_TO_L,
    CONN_R_UP,
    LEGAL_CONNECTIONS,
    Connection,
    Direction,
    InPort,
    OutPort,
    Role,
    Side,
)


class TestPorts:
    def test_in_port_sides(self):
        assert InPort.L.side is Side.LEFT
        assert InPort.R.side is Side.RIGHT
        assert InPort.P.side is Side.PARENT

    def test_out_port_sides(self):
        assert OutPort.L.side is Side.LEFT
        assert OutPort.R.side is Side.RIGHT
        assert OutPort.P.side is Side.PARENT


class TestConnection:
    def test_exactly_six_legal_connections(self):
        # 3 inputs × 3 outputs − 3 same-side pairs = 6 (paper §2)
        assert len(LEGAL_CONNECTIONS) == 6
        assert len(set(LEGAL_CONNECTIONS)) == 6

    @pytest.mark.parametrize("in_port", list(InPort))
    def test_same_side_rejected(self, in_port):
        same_side = {
            InPort.L: OutPort.L,
            InPort.R: OutPort.R,
            InPort.P: OutPort.P,
        }[in_port]
        with pytest.raises(IllegalConnectionError):
            Connection(in_port, same_side)

    def test_str_form(self):
        assert str(CONN_L_TO_R) == "l_i->r_o"
        assert str(CONN_DOWN_L) == "p_i->l_o"

    def test_named_constants_cover_all(self):
        named = {CONN_L_TO_R, CONN_R_TO_L, CONN_L_UP, CONN_R_UP, CONN_DOWN_L, CONN_DOWN_R}
        assert named == set(LEGAL_CONNECTIONS)

    def test_equality_and_hash(self):
        assert Connection(InPort.L, OutPort.R) == CONN_L_TO_R
        assert hash(Connection(InPort.L, OutPort.R)) == hash(CONN_L_TO_R)


class TestDirection:
    def test_opposites(self):
        assert Direction.UP.opposite is Direction.DOWN
        assert Direction.DOWN.opposite is Direction.UP

    def test_double_opposite_identity(self):
        for d in Direction:
            assert d.opposite.opposite is d


class TestRole:
    def test_wire_encodings_match_paper(self):
        # Step 1.1: source [1,0], destination [0,1], neither [0,0]
        assert Role.SOURCE.wire_encoding == (1, 0)
        assert Role.DESTINATION.wire_encoding == (0, 1)
        assert Role.NEITHER.wire_encoding == (0, 0)

    @pytest.mark.parametrize("role", list(Role))
    def test_wire_roundtrip(self, role):
        assert Role.from_wire(role.wire_encoding) is role

    def test_invalid_wire_rejected(self):
        with pytest.raises(ValueError):
            Role.from_wire((1, 1))
