"""Unit tests for the round-plan executor shared by centralized schedulers."""

import pytest

from repro.exceptions import SchedulingError
from repro.comms.communication import Communication, CommunicationSet
from repro.core.base import execute_round_plan


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestExecuteRoundPlan:
    def test_single_round_plan(self):
        cset = cs((0, 1), (2, 3))
        s = execute_round_plan(cset, 8, [list(cset)], "t")
        assert s.n_rounds == 1
        assert sorted(s.performed()) == sorted(cset.comms)

    def test_multi_round_plan(self):
        cset = cs((0, 7), (1, 6))
        plan = [[Communication(0, 7)], [Communication(1, 6)]]
        s = execute_round_plan(cset, 8, plan, "t")
        assert s.n_rounds == 2
        assert s.rounds[0].writers == (0,)
        assert s.rounds[1].writers == (1,)

    def test_plan_missing_comm_rejected(self):
        cset = cs((0, 1), (2, 3))
        with pytest.raises(SchedulingError, match="plan performs"):
            execute_round_plan(cset, 8, [[Communication(0, 1)]], "t")

    def test_plan_with_extra_comm_rejected(self):
        cset = cs((0, 1))
        plan = [[Communication(0, 1), Communication(2, 3)]]
        with pytest.raises(SchedulingError):
            execute_round_plan(cset, 8, plan, "t")

    def test_duplicated_comm_rejected(self):
        cset = cs((0, 1))
        plan = [[Communication(0, 1)], [Communication(0, 1)]]
        with pytest.raises(SchedulingError):
            execute_round_plan(cset, 8, plan, "t")

    def test_incompatible_round_detected(self):
        # (0,7) and (1,6) share up-edges: same round must fail on staging
        cset = cs((0, 7), (1, 6))
        with pytest.raises(SchedulingError, match="not realisable"):
            execute_round_plan(cset, 8, [list(cset)], "t")

    def test_power_accounted(self):
        cset = cs((0, 7))
        s = execute_round_plan(cset, 8, [[Communication(0, 7)]], "t")
        # 5 switches on the path, one connection each
        assert s.power.total_units == 5

    def test_empty_plan_for_empty_set(self):
        s = execute_round_plan(CommunicationSet(()), 8, [], "t")
        assert s.n_rounds == 0

    def test_scheduler_name_recorded(self):
        s = execute_round_plan(cs((0, 1)), 8, [[Communication(0, 1)]], "my-name")
        assert s.scheduler_name == "my-name"
