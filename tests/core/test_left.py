"""Unit + property tests for the native left-oriented CSA."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.exceptions import OrientationError
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import random_well_nested
from repro.comms.width import width
from repro.core.left import LeftPADRScheduler
from repro.extensions.oriented import MirroredScheduler
from repro.cst.topology import CSTTopology
from repro.analysis.verifier import verify_schedule

from tests.conftest import wellnested_set_st


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestBasics:
    def test_rejects_right_oriented(self):
        with pytest.raises(OrientationError):
            LeftPADRScheduler().schedule(cs((0, 1)), n_leaves=8)

    def test_single_pair(self):
        cset = cs((5, 2))
        s = LeftPADRScheduler().schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 1

    def test_nested_left_chain(self):
        cset = cs((7, 0), (6, 1), (5, 2))
        s = LeftPADRScheduler().schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == width(cset, CSTTopology.of(8)) == 3

    def test_empty_set(self):
        s = LeftPADRScheduler().schedule(CommunicationSet(()), n_leaves=8)
        assert s.n_rounds == 0

    def test_power_optimal_on_left_crossing_chain(self):
        n = 64
        cset = CommunicationSet(Communication(n - 1 - i, i) for i in range(16))
        s = LeftPADRScheduler().schedule(cset, n_leaves=n)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 16
        assert s.power.max_switch_changes <= 2  # Theorem 8, mirrored


class TestCrossCheckAgainstReflection:
    """The mirror-lens and reflected-copy implementations must agree."""

    @pytest.mark.parametrize("seed", range(6))
    def test_same_rounds_and_power(self, seed):
        rng = np.random.default_rng(seed)
        right = random_well_nested(10, 64, rng)
        left = right.mirrored(64)

        native = LeftPADRScheduler().schedule(left, n_leaves=64)
        reflected = MirroredScheduler().schedule(left, n_leaves=64)

        verify_schedule(native, left).raise_if_failed()
        verify_schedule(reflected, left).raise_if_failed()
        assert native.n_rounds == reflected.n_rounds
        assert native.power.total_units == reflected.power.total_units
        assert (
            native.power.max_switch_changes
            == reflected.power.max_switch_changes
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_per_round_deliveries_are_reflections(self, seed):
        rng = np.random.default_rng(100 + seed)
        right = random_well_nested(8, 32, rng)
        left = right.mirrored(32)

        native = LeftPADRScheduler().schedule(left, n_leaves=32)
        right_run = __import__("repro").PADRScheduler().schedule(right, n_leaves=32)
        for rn, rr in zip(native.rounds, right_run.rounds):
            reflected = sorted(
                Communication(32 - 1 - c.src, 32 - 1 - c.dst)
                for c in rr.performed
            )
            assert sorted(rn.performed) == reflected


class TestProperties:
    @given(cset=wellnested_set_st(max_pairs=8))
    @settings(max_examples=80, deadline=None)
    def test_left_csa_correct_and_optimal(self, cset):
        left = cset.mirrored(64)
        if len(left) == 0:
            return
        s = LeftPADRScheduler().schedule(left, n_leaves=64)
        verify_schedule(s, left).raise_if_failed()
        assert s.n_rounds == width(left, CSTTopology.of(64))

    @given(cset=wellnested_set_st(max_pairs=8))
    @settings(max_examples=60, deadline=None)
    def test_left_csa_constant_changes(self, cset):
        left = cset.mirrored(64)
        if len(left) == 0:
            return
        s = LeftPADRScheduler().schedule(left, n_leaves=64)
        assert s.power.max_switch_changes <= 6
