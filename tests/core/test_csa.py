"""Unit and scenario tests for the full PADR scheduler."""

import numpy as np
import pytest

from repro.exceptions import NotWellNestedError, OrientationError, SchedulingError
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import (
    crossing_chain,
    disjoint_pairs,
    nested_chain,
    paper_figure2_set,
    random_well_nested,
    segmentable_bus,
    staircase,
)
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.power import PowerPolicy
from repro.analysis.verifier import verify_schedule


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


def run_verified(cset, n_leaves=None, **kw):
    schedule = PADRScheduler().schedule(cset, n_leaves=n_leaves, **kw)
    verify_schedule(schedule, cset).raise_if_failed()
    return schedule


class TestBasics:
    def test_empty_set_zero_rounds(self):
        s = PADRScheduler().schedule(CommunicationSet(()), n_leaves=8)
        assert s.n_rounds == 0
        assert s.power.total_units == 0

    def test_single_adjacent_pair(self):
        s = run_verified(cs((0, 1)), 8)
        assert s.n_rounds == 1
        assert list(s.performed()) == [Communication(0, 1)]

    def test_single_cross_root_pair(self):
        s = run_verified(cs((0, 7)), 8)
        assert s.n_rounds == 1

    def test_disjoint_pairs_one_round(self):
        cset = disjoint_pairs(4)
        s = run_verified(cset)
        assert s.n_rounds == 1
        assert len(s.rounds[0].performed) == 4

    def test_figure2_example(self):
        cset = paper_figure2_set()
        s = run_verified(cset, 16)
        assert s.n_rounds == width(cset) == 2

    def test_default_tree_size(self):
        s = PADRScheduler().schedule(cs((0, 5)))
        assert s.n_leaves == 8

    def test_schedule_metadata(self):
        s = run_verified(cs((0, 1)), 8)
        assert s.scheduler_name == "padr-csa"
        assert s.control_messages > 0
        assert s.control_words > 0


class TestInputValidation:
    def test_left_oriented_rejected(self):
        with pytest.raises(OrientationError):
            PADRScheduler().schedule(cs((5, 2)), n_leaves=8)

    def test_crossing_rejected(self):
        with pytest.raises(NotWellNestedError):
            PADRScheduler().schedule(cs((0, 2), (1, 3)), n_leaves=8)

    def test_validation_can_be_disabled_for_valid_input(self):
        s = PADRScheduler(validate_input=False).schedule(cs((0, 1)), n_leaves=8)
        assert s.n_rounds == 1


class TestOutermostFirstSelection:
    def test_outermost_scheduled_in_round_zero(self):
        cset = nested_chain(3)
        s = run_verified(cset)
        round0 = set(s.rounds[0].performed)
        assert Communication(0, 5) in round0

    def test_crossing_chain_outer_to_inner(self):
        cset = crossing_chain(4)
        s = run_verified(cset)
        order = [c for r in s.rounds for c in r.performed]
        assert order == sorted(cset.comms, key=lambda c: c.src)

    def test_independent_subtrees_progress_concurrently(self):
        # two staircase chains in different subtrees: scheduled in parallel
        cset = staircase(2, 2, gap=0)
        s = run_verified(cset)
        assert s.n_rounds == width(cset)
        assert len(s.rounds[0].performed) >= 2


class TestRoundCounts:
    @pytest.mark.parametrize("w", [1, 2, 3, 5, 8, 16, 33])
    def test_crossing_chain_exactly_w_rounds(self, w):
        s = run_verified(crossing_chain(w))
        assert s.n_rounds == w

    def test_segmentable_bus_single_round(self):
        cset = segmentable_bus([0, 4, 8, 12, 16])
        s = run_verified(cset)
        assert s.n_rounds == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_random_sets_meet_width(self, seed):
        rng = np.random.default_rng(seed)
        cset = random_well_nested(12, 64, rng)
        s = run_verified(cset, 64)
        assert s.n_rounds == width(cset)


class TestPowerBehaviour:
    @pytest.mark.parametrize("w", [2, 8, 32, 128])
    def test_constant_max_changes_on_crossing_chains(self, w):
        s = run_verified(crossing_chain(w))
        assert s.power.max_switch_changes <= 2  # Theorem 8 in the strictest form

    @pytest.mark.parametrize("w", [2, 8, 32, 128])
    def test_constant_max_units_on_crossing_chains(self, w):
        s = run_verified(crossing_chain(w))
        assert s.power.max_switch_units <= 3

    def test_random_sets_bounded_changes(self):
        rng = np.random.default_rng(99)
        for _ in range(10):
            cset = random_well_nested(24, 96, rng)
            n = 128
            s = run_verified(cset, n)
            # Lemma 6/7: the word stream alternates at most twice per port
            # family, so a handful of changes bounds every switch.
            assert s.power.max_switch_changes <= 6

    def test_rebuild_policy_pays_per_round(self):
        cset = crossing_chain(8)
        lazy = PADRScheduler().schedule(cset)
        rebuild = PADRScheduler().schedule(cset, policy=PowerPolicy.rebuild())
        assert rebuild.power.total_units > lazy.power.total_units
        assert rebuild.power.max_switch_units >= 8  # root pays every round


class TestDistributedDiscipline:
    def test_phase1_runs_once_then_one_wave_per_round(self):
        cset = crossing_chain(4)
        sched = PADRScheduler()
        s = sched.schedule(cset)
        # waves: 1 (phase 1) + n_rounds (phase 2)
        n = cset.min_leaves()
        per_wave = 2 * n - 2
        assert s.control_messages == per_wave * (1 + s.n_rounds)

    def test_final_state_exhausted(self):
        sched = PADRScheduler()
        sched.schedule(crossing_chain(5))
        assert all(st.exhausted for st in sched.last_states.values())

    def test_all_pes_satisfied(self):
        sched = PADRScheduler()
        sched.schedule(paper_figure2_set(), n_leaves=16)
        assert sched.last_network.all_done


class TestLargerScenarios:
    def test_full_tree_dense_random(self):
        rng = np.random.default_rng(5)
        cset = random_well_nested(128, 256, rng)
        s = run_verified(cset, 256)
        assert s.n_rounds == width(cset)

    def test_wide_and_deep(self):
        cset = crossing_chain(64, n_leaves=256)
        s = run_verified(cset, 256)
        assert s.n_rounds == 64
        assert s.power.max_switch_changes <= 2
