"""Unit tests for the columnar struct-of-arrays Phase-2 kernel.

The property suite (``tests/properties/test_property_columnar.py``)
establishes bit-identical parity on random workloads; these tests pin
the *dispatch* behaviour — when the kernel may run, when it must stand
aside, and that the write-back leaves a caller-supplied network in
exactly the state the scalar engine would have left it.
"""

import numpy as np
import pytest

from repro.comms.generators import (
    disjoint_pairs,
    nested_chain,
    paper_figure2_set,
    random_well_nested,
)
from repro.core.columnar import schedule_batch
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.cst.faults import DeadSwitchFault, inject
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.exceptions import ReproError

N = 16


def _columnar_scheduler(**overrides):
    cfg = SchedulerConfig(engine="columnar", **overrides)
    return PADRScheduler(config=cfg)


def _assert_equal(a, b):
    assert [r.performed for r in a.rounds] == [r.performed for r in b.rounds]
    assert [r.writers for r in a.rounds] == [r.writers for r in b.rounds]
    assert a.power.total_units == b.power.total_units
    assert a.power.per_switch_units == b.power.per_switch_units
    assert a.control_messages == b.control_messages
    assert a.physical_messages == b.physical_messages


class TestDispatchGuards:
    """``_columnar_applicable`` must veto the kernel outside its contract."""

    def test_plain_run_takes_columnar(self):
        sched = _columnar_scheduler()
        assert sched._columnar_applicable(N, None, None)

    def test_trace_compat_vetoes(self):
        sched = _columnar_scheduler(trace_compat=True)
        assert not sched._columnar_applicable(N, None, None)

    def test_eager_teardown_vetoes(self):
        sched = _columnar_scheduler()
        assert not sched._columnar_applicable(N, None, PowerPolicy.eager())
        net = CSTNetwork.of_size(N, policy=PowerPolicy.eager())
        assert not sched._columnar_applicable(N, net, None)

    def test_faulted_network_vetoes(self):
        sched = _columnar_scheduler()
        net = CSTNetwork.of_size(N)
        inject(net, 1, DeadSwitchFault())
        assert not sched._columnar_applicable(N, net, None)

    def test_used_network_vetoes(self):
        sched = _columnar_scheduler()
        net = CSTNetwork.of_size(N)
        sched.schedule(paper_figure2_set(), network=net)
        assert net.rounds_run > 0
        assert not sched._columnar_applicable(N, net, None)

    def test_vetoed_run_is_still_bit_identical(self):
        """Outside the guards the scalar path runs the same schedule."""
        cset = paper_figure2_set()
        plain = _columnar_scheduler().schedule(cset, n_leaves=N)
        compat = _columnar_scheduler(trace_compat=True).schedule(cset, n_leaves=N)
        _assert_equal(plain, compat)


class TestWriteBack:
    """Columnar on a fresh network ends in the scalar engine's final state."""

    @pytest.mark.parametrize(
        "cset",
        [paper_figure2_set(), nested_chain(3, 16), disjoint_pairs(4, stride=2)],
        ids=["fig2", "nested", "disjoint"],
    )
    def test_network_state_matches_fast_engine(self, cset):
        net_col = CSTNetwork.of_size(N)
        net_fast = CSTNetwork.of_size(N)
        col = _columnar_scheduler().schedule(cset, network=net_col)
        fast = PADRScheduler(config=SchedulerConfig(engine="fast")).schedule(
            cset, network=net_fast
        )
        _assert_equal(col, fast)
        assert net_col.rounds_run == net_fast.rounds_run
        for hid, sw_fast in net_fast.switches.items():
            sw_col = net_col.switches[hid]
            assert sw_col.configuration == sw_fast.configuration, hid
            assert sw_col.config_changes == sw_fast.config_changes, hid
            assert sw_col.rounds_committed == sw_fast.rounds_committed, hid
        assert net_col.meter.total_units == net_fast.meter.total_units
        assert net_col.meter.total_changes == net_fast.meter.total_changes
        for pe_col, pe_fast in zip(net_col.pes, net_fast.pes):
            assert pe_col.role is pe_fast.role

    def test_second_run_on_same_network_stays_consistent(self):
        """A persistent network serves back-to-back schedules correctly:
        run 1 takes the kernel, run 2 falls back (rounds_run > 0) — the
        results must match a scalar scheduler doing the same sequence."""
        csets = [paper_figure2_set(), nested_chain(2, 16)]
        net_col = CSTNetwork.of_size(N)
        net_fast = CSTNetwork.of_size(N)
        col_sched = _columnar_scheduler()
        fast_sched = PADRScheduler(config=SchedulerConfig(engine="fast"))
        for cset in csets:
            _assert_equal(
                col_sched.schedule(cset, network=net_col),
                fast_sched.schedule(cset, network=net_fast),
            )
        assert net_col.rounds_run == net_fast.rounds_run
        assert net_col.meter.total_units == net_fast.meter.total_units


class TestReusePhase1:
    def test_cached_phase1_matches_fast_engine_run_for_run(self):
        """The cached second run skips the upward wave, so its control
        accounting legitimately shrinks by one wave — but it must shrink
        *identically* to the scalar fast engine's cached run."""
        cset = paper_figure2_set()
        col = _columnar_scheduler(reuse_phase1=True)
        fast = PADRScheduler(
            config=SchedulerConfig(engine="fast", reuse_phase1=True)
        )
        for _ in range(2):
            _assert_equal(
                col.schedule(cset, n_leaves=N), fast.schedule(cset, n_leaves=N)
            )

    def test_different_roles_miss_the_cache(self):
        sched = _columnar_scheduler(reuse_phase1=True)
        a = sched.schedule(paper_figure2_set(), n_leaves=N)
        b = sched.schedule(nested_chain(3, 16), n_leaves=N)
        fresh = _columnar_scheduler()
        _assert_equal(a, fresh.schedule(paper_figure2_set(), n_leaves=N))
        _assert_equal(b, fresh.schedule(nested_chain(3, 16), n_leaves=N))


class TestScheduleBatch:
    def test_empty_batch(self):
        assert schedule_batch([], n_leaves=N) == []

    def test_mixed_shapes_match_solo(self):
        rng = np.random.default_rng(3)
        csets = [random_well_nested(k, N, rng) for k in (1, 3, 5)]
        cfg = SchedulerConfig(engine="columnar")
        solo = PADRScheduler(config=cfg)
        for got, cset in zip(schedule_batch(csets, n_leaves=N, config=cfg), csets):
            _assert_equal(got, solo.schedule(cset, n_leaves=N))

    def test_invalid_set_rejected_when_validating(self):
        from repro.comms.communication import Communication, CommunicationSet

        crossing = CommunicationSet(
            (Communication(0, 2), Communication(1, 3))
        )
        cfg = SchedulerConfig(engine="columnar", validate_input=True)
        with pytest.raises(ReproError):
            schedule_batch([crossing], n_leaves=N, config=cfg)

    def test_reference_config_falls_back_but_matches(self):
        cset = paper_figure2_set()
        cfg = SchedulerConfig(engine="reference")
        (got,) = schedule_batch([cset], n_leaves=N, config=cfg)
        _assert_equal(got, PADRScheduler(config=cfg).schedule(cset, n_leaves=N))
