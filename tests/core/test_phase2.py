"""Unit tests for the CONFIGURE procedure (paper Figure 5), case by case."""

import pytest

from repro.exceptions import ProtocolError
from repro.types import (
    CONN_DOWN_L,
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_UP,
)
from repro.core.control import DownKind, DownWord, StoredState
from repro.core.phase2 import configure


class TestCaseNone:
    def test_idle_switch_stays_idle(self):
        st = StoredState()
        out = configure(1, st, DownWord.none())
        assert out.connections == ()
        assert out.left_word.kind is DownKind.NONE
        assert out.right_word.kind is DownKind.NONE
        assert not out.scheduled_matched

    def test_matched_pair_scheduled(self):
        st = StoredState(matched=2)
        out = configure(1, st, DownWord.none())
        assert out.connections == (CONN_L_TO_R,)
        assert out.scheduled_matched
        assert st.matched == 1

    def test_outermost_ranks_sent(self):
        # 1 unmatched left source and... types 4/5 exclusive, so check each
        st = StoredState(matched=1, unmatched_left_src=2)
        out = configure(1, st, DownWord.none())
        assert out.left_word == DownWord.src(2)
        assert out.right_word == DownWord.dst(0)

    def test_outermost_rank_right(self):
        st = StoredState(matched=1, unmatched_right_dst=3)
        out = configure(1, st, DownWord.none())
        assert out.left_word == DownWord.src(0)
        assert out.right_word == DownWord.dst(3)

    def test_pass_through_counters_untouched(self):
        st = StoredState(matched=1, right_src=2, left_dst=1)
        configure(1, st, DownWord.none())
        assert st.right_src == 2 and st.left_dst == 1


class TestCaseSrc:
    def test_source_from_left_subtree(self):
        st = StoredState(unmatched_left_src=2)
        out = configure(1, st, DownWord.src(1))
        assert out.connections == (CONN_L_UP,)
        assert out.left_word == DownWord.src(1)
        assert out.right_word.kind is DownKind.NONE
        assert st.unmatched_left_src == 1

    def test_source_from_right_subtree_no_match(self):
        st = StoredState(unmatched_left_src=1, right_src=2)
        out = configure(1, st, DownWord.src(2))
        assert out.connections == (CONN_R_UP,)
        assert out.right_word == DownWord.src(1)  # rank shifted by u_sl
        assert out.left_word.kind is DownKind.NONE
        assert st.right_src == 1

    def test_source_right_piggybacks_matched(self):
        st = StoredState(matched=1, right_src=1)
        out = configure(1, st, DownWord.src(0))
        assert set(out.connections) == {CONN_R_UP, CONN_L_TO_R}
        assert out.scheduled_matched
        assert out.left_word == DownWord.src(0)  # matched source rank = u_sl
        assert out.right_word == DownWord.both(0, 0)
        assert st.matched == 0 and st.right_src == 0

    def test_source_left_does_not_piggyback(self):
        # l_i is busy passing the source up: the matched pair must wait
        st = StoredState(matched=1, unmatched_left_src=1)
        out = configure(1, st, DownWord.src(0))
        assert out.connections == (CONN_L_UP,)
        assert st.matched == 1

    def test_rank_out_of_range(self):
        st = StoredState(unmatched_left_src=1)
        with pytest.raises(ProtocolError, match="source rank"):
            configure(1, st, DownWord.src(1))


class TestCaseDst:
    def test_destination_into_right_subtree(self):
        st = StoredState(unmatched_right_dst=2)
        out = configure(1, st, DownWord.dst(1))
        assert out.connections == (CONN_DOWN_R,)
        assert out.right_word == DownWord.dst(1)
        assert out.left_word.kind is DownKind.NONE
        assert st.unmatched_right_dst == 1

    def test_destination_into_left_subtree_no_match(self):
        st = StoredState(unmatched_right_dst=1, left_dst=2)
        out = configure(1, st, DownWord.dst(2))
        assert out.connections == (CONN_DOWN_L,)
        assert out.left_word == DownWord.dst(1)  # rank shifted by u_dr
        assert st.left_dst == 1

    def test_destination_left_piggybacks_matched(self):
        st = StoredState(matched=1, left_dst=1)
        out = configure(1, st, DownWord.dst(0))
        assert set(out.connections) == {CONN_DOWN_L, CONN_L_TO_R}
        assert out.scheduled_matched
        assert out.left_word == DownWord.both(0, 0)
        assert out.right_word == DownWord.dst(0)

    def test_destination_right_does_not_piggyback(self):
        # r_o is busy passing the destination down
        st = StoredState(matched=1, unmatched_right_dst=1)
        out = configure(1, st, DownWord.dst(0))
        assert out.connections == (CONN_DOWN_R,)
        assert st.matched == 1

    def test_rank_out_of_range(self):
        st = StoredState(left_dst=1)
        with pytest.raises(ProtocolError, match="destination rank"):
            configure(1, st, DownWord.dst(1))


class TestCaseBoth:
    def test_src_left_dst_right(self):
        st = StoredState(unmatched_left_src=1, unmatched_right_dst=0,
                         left_dst=0, right_src=0, matched=0)
        # need both a left source and a right destination: types 4 and 5
        # are exclusive, so model the right destination as... not possible.
        # Use left source + right destination via matched=0 pass-throughs:
        st = StoredState(unmatched_left_src=1)
        st.unmatched_right_dst = 1  # bypass Phase-1 invariant: mid-Phase-2
        out = configure(1, st, DownWord.both(0, 0))
        assert set(out.connections) == {CONN_L_UP, CONN_DOWN_R}
        assert out.left_word == DownWord.src(0)
        assert out.right_word == DownWord.dst(0)

    def test_src_left_dst_left(self):
        st = StoredState(unmatched_left_src=1, left_dst=1)
        out = configure(1, st, DownWord.both(0, 0))
        assert set(out.connections) == {CONN_L_UP, CONN_DOWN_L}
        assert out.left_word == DownWord.both(0, 0)
        assert out.right_word.kind is DownKind.NONE

    def test_src_right_dst_right(self):
        st = StoredState(right_src=1, unmatched_right_dst=1)
        out = configure(1, st, DownWord.both(0, 0))
        assert set(out.connections) == {CONN_R_UP, CONN_DOWN_R}
        assert out.right_word == DownWord.both(0, 0)
        assert out.left_word.kind is DownKind.NONE

    def test_crossing_without_match(self):
        st = StoredState(right_src=1, left_dst=1)
        out = configure(1, st, DownWord.both(0, 0))
        assert set(out.connections) == {CONN_R_UP, CONN_DOWN_L}
        assert out.left_word == DownWord.dst(0)
        assert out.right_word == DownWord.src(0)

    def test_crossing_piggybacks_matched_full_crossbar(self):
        st = StoredState(matched=1, right_src=1, left_dst=1)
        out = configure(1, st, DownWord.both(0, 0))
        # all three connections at once: the only case using the full switch
        assert set(out.connections) == {CONN_R_UP, CONN_DOWN_L, CONN_L_TO_R}
        assert out.scheduled_matched
        assert out.left_word == DownWord.both(0, 0)
        assert out.right_word == DownWord.both(0, 0)
        assert st.matched == 0

    def test_rank_checks(self):
        st = StoredState(right_src=1, left_dst=1)
        with pytest.raises(ProtocolError):
            configure(1, st, DownWord.both(1, 0))
        st = StoredState(right_src=1, left_dst=1)
        with pytest.raises(ProtocolError):
            configure(1, st, DownWord.both(0, 1))


class TestCounterConservation:
    """Each CONFIGURE call removes exactly the endpoints it schedules."""

    def test_none_case_only_decrements_matched(self):
        st = StoredState(matched=2, right_src=3, left_dst=1)
        before = st.as_tuple()
        configure(1, st, DownWord.none())
        after = st.as_tuple()
        assert before[0] - after[0] == 1
        assert before[1:] == after[1:]

    def test_total_decrement_equals_word_demands(self):
        # [s,d] with crossing + match: 1 src + 1 dst + 1 matched = 3 removed
        st = StoredState(matched=1, right_src=1, left_dst=1)
        total_before = sum(st.as_tuple())
        configure(1, st, DownWord.both(0, 0))
        assert total_before - sum(st.as_tuple()) == 3
