"""Unit tests for Phase 1 (distributing control information)."""

import pytest
from hypothesis import given

from repro.exceptions import ProtocolError
from repro.types import Role
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, paper_figure2_set
from repro.core.phase1 import phase1_states, run_phase1
from repro.cst.engine import CSTEngine
from repro.cst.network import CSTNetwork

from tests.conftest import wellnested_set_st


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestMatchingAtLCA:
    def test_single_comm_matched_at_lca(self):
        states = phase1_states(cs((0, 7)), 8)
        assert states[1].matched == 1  # LCA(0,7) is the root
        assert states[4].as_tuple() == (0, 1, 0, 0, 0)  # source passes up
        assert states[2].as_tuple() == (0, 1, 0, 0, 0)
        assert states[3].as_tuple() == (0, 0, 0, 0, 1)  # destination side
        assert states[7].as_tuple() == (0, 0, 0, 0, 1)

    def test_adjacent_comm_matched_low(self):
        states = phase1_states(cs((0, 1)), 8)
        assert states[4].matched == 1
        assert states[2].exhausted
        assert states[1].exhausted

    def test_every_comm_matched_exactly_once(self, fig2_set):
        states = phase1_states(fig2_set, 16)
        assert sum(st.matched for st in states.values()) == len(fig2_set)

    def test_lemma1_min_matching(self):
        # two sources climb from the left of switch 2; only one destination
        # climbs from its right: M = min(2, 1) = 1 at switch 1 (root)?  Use
        # a concrete nesting: (0,6) and (1,5) match at root; (2,3) below.
        states = phase1_states(cs((0, 6), (1, 5), (2, 3)), 8)
        assert states[1].matched == 2
        assert states[5].matched == 1

    def test_counts_match_definition(self):
        # switch 2 of an 8-leaf tree: leaves 0..3.  Set: (0,2) matched below
        # it at switch... lca(0,2)=2 actually; (1,6) passes up; (5,3)? keep
        # right-oriented: (1,6) source climbs through 2.
        states = phase1_states(cs((0, 2), (1, 6)), 8)
        # at switch 2: lca(0,2)=2 -> one matched; source 1 unmatched climbs
        assert states[2].matched == 1
        assert states[2].unmatched_left_src == 1

    @given(wellnested_set_st())
    def test_total_matched_equals_set_size(self, s):
        states = phase1_states(s, 64)
        assert sum(st.matched for st in states.values()) == len(s)

    @given(wellnested_set_st())
    def test_type45_exclusivity_everywhere(self, s):
        states = phase1_states(s, 64)
        for st in states.values():
            assert st.unmatched_left_src == 0 or st.unmatched_right_dst == 0


class TestRootBalance:
    def test_unbalanced_set_detected(self):
        net = CSTNetwork.of_size(8)
        net.assign_roles({0: Role.SOURCE})  # a source with no destination
        with pytest.raises(ProtocolError, match="unbalanced"):
            run_phase1(CSTEngine(net))

    def test_orphan_destination_detected(self):
        net = CSTNetwork.of_size(8)
        net.assign_roles({5: Role.DESTINATION})
        with pytest.raises(ProtocolError, match="unbalanced"):
            run_phase1(CSTEngine(net))


class TestEngineAccounting:
    def test_phase1_is_one_wave_of_constant_words(self):
        net = CSTNetwork.of_size(16)
        net.assign_roles(crossing_chain(4, 16).roles())
        engine = CSTEngine(net)
        run_phase1(engine)
        assert engine.trace.waves == 1
        assert engine.trace.messages == 2 * 16 - 2
        # Theorem 5: constant words per message
        assert engine.trace.words == engine.trace.messages * 2

    def test_empty_set_all_exhausted(self):
        states = phase1_states(CommunicationSet(()), 8)
        assert all(st.exhausted for st in states.values())


class TestBruteForceCrossCheck:
    """Phase 1's counters re-derived from first principles (interval logic)
    must match the distributed wave's result on every generated workload."""

    @staticmethod
    def brute_force_state(cset, topo, switch_id):
        from repro.core.control import StoredState

        left = set(topo.subtree_leaf_range(topo.left_child(switch_id)))
        right = set(topo.subtree_leaf_range(topo.right_child(switch_id)))
        matched = unmatched_left_src = left_dst = right_src = unmatched_right_dst = 0
        for c in cset:
            if c.src in left and c.dst in right:
                matched += 1          # type 1: matched at this switch
            elif c.src in left and c.dst not in left | right:
                unmatched_left_src += 1  # type 4
            elif c.dst in left and c.src not in left | right:
                left_dst += 1         # type 3
            elif c.src in right and c.dst not in left | right:
                right_src += 1        # type 2
            elif c.dst in right and c.src not in left | right:
                unmatched_right_dst += 1  # type 5
        return StoredState(
            matched=matched,
            unmatched_left_src=unmatched_left_src,
            left_dst=left_dst,
            right_src=right_src,
            unmatched_right_dst=unmatched_right_dst,
        )

    @given(wellnested_set_st(max_pairs=10))
    def test_wave_matches_brute_force(self, s):
        from repro.cst.topology import CSTTopology

        topo = CSTTopology.of(64)
        states = phase1_states(s, 64)
        for switch_id in topo.switches():
            expected = self.brute_force_state(s, topo, switch_id)
            assert states[switch_id].as_tuple() == expected.as_tuple(), (
                f"switch {switch_id}: wave {states[switch_id]} != "
                f"brute force {expected}"
            )
