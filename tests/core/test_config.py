"""SchedulerConfig: the one config object behind every scheduler knob."""

from __future__ import annotations

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.cst.engine import CSTEngine, EngineTrace, ReferenceWaveEngine
from repro.cst.network import CSTNetwork
from repro.exceptions import SchedulingError


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


class TestDefaults:
    def test_default_matches_constructor_defaults(self):
        cfg = SchedulerConfig()
        sched = PADRScheduler()
        assert sched.validate_input == cfg.validate_input
        assert sched.check_postconditions == cfg.check_postconditions
        assert sched.strict == cfg.strict
        assert sched.reuse_phase1 == cfg.reuse_phase1

    def test_explicit_kwargs_beat_config(self):
        cfg = SchedulerConfig(strict=True, validate_input=True)
        sched = PADRScheduler(strict=False, config=cfg)
        assert sched.strict is False
        assert sched.validate_input is True


class TestEngineSelection:
    def test_fast_path_selects_cst_engine(self):
        factory = SchedulerConfig(fast_path=True).engine_factory()
        assert factory is CSTEngine  # no wrapper on the hot path

    def test_reference_engine(self):
        factory = SchedulerConfig(fast_path=False).engine_factory()
        assert factory is ReferenceWaveEngine

    def test_trace_cap_applied_per_instance(self):
        cfg = SchedulerConfig(trace_wave_cap=2)
        engine = cfg.engine_factory()(CSTNetwork.of_size(8))
        assert engine.trace.PER_WAVE_CAP == 2
        # the ClassVar itself is untouched
        assert EngineTrace.PER_WAVE_CAP != 2

    def test_engines_produce_identical_schedules(self):
        workload = cs((0, 7), (1, 2), (3, 6))
        fast = SchedulerConfig(fast_path=True).build().schedule(workload)
        ref = SchedulerConfig(fast_path=False).build().schedule(workload)
        assert fast.rounds == ref.rounds
        assert fast.power.total_units == ref.power.total_units


class TestSerialization:
    def test_round_trip(self):
        cfg = SchedulerConfig(fast_path=False, trace_wave_cap=16, strict=False)
        assert SchedulerConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(SchedulingError, match="unknown"):
            SchedulerConfig.from_dict({"not_a_field": 1})

    def test_negative_trace_cap_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(trace_wave_cap=-1)

    def test_cache_signature_distinguishes_configs(self):
        assert (
            SchedulerConfig().cache_signature()
            != SchedulerConfig(fast_path=False).cache_signature()
        )
        assert (
            SchedulerConfig().cache_signature()
            == SchedulerConfig().cache_signature()
        )


class TestBuilders:
    def test_build_stream_forwards_config(self):
        cfg = SchedulerConfig(fresh_network_per_step=True, verify_steps=False)
        stream = cfg.build_stream()
        assert stream.fresh_network_per_step is True
        assert stream.verify is False
        assert stream.config is cfg
