"""SchedulerConfig: the one config object behind every scheduler knob."""

from __future__ import annotations

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.cst.engine import (
    ColumnarWaveEngine,
    CSTEngine,
    EngineTrace,
    ReferenceWaveEngine,
)
from repro.cst.network import CSTNetwork
from repro.exceptions import SchedulingError


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


class TestDefaults:
    def test_default_matches_constructor_defaults(self):
        cfg = SchedulerConfig()
        sched = PADRScheduler()
        assert sched.validate_input == cfg.validate_input
        assert sched.check_postconditions == cfg.check_postconditions
        assert sched.strict == cfg.strict
        assert sched.reuse_phase1 == cfg.reuse_phase1

    def test_explicit_kwargs_beat_config(self):
        cfg = SchedulerConfig(strict=True, validate_input=True)
        sched = PADRScheduler(strict=False, config=cfg)
        assert sched.strict is False
        assert sched.validate_input is True


class TestEngineSelection:
    def test_fast_path_selects_cst_engine(self):
        factory = SchedulerConfig(engine="fast").engine_factory()
        assert factory is CSTEngine  # no wrapper on the hot path

    def test_reference_engine(self):
        factory = SchedulerConfig(fast_path=False).engine_factory()
        assert factory is ReferenceWaveEngine

    def test_explicit_columnar_is_bare_class(self):
        factory = SchedulerConfig(engine="columnar").engine_factory()
        assert factory is ColumnarWaveEngine

    def test_auto_factory_resolves_by_size(self):
        cfg = SchedulerConfig(columnar_threshold=256)
        factory = cfg.engine_factory()
        assert factory.resolve_engine_cls(64) is CSTEngine
        assert factory.resolve_engine_cls(256) is ColumnarWaveEngine
        assert isinstance(factory(CSTNetwork.of_size(8)), CSTEngine)

    def test_engine_cls_matches_selects_columnar(self):
        for engine in ("auto", "fast", "columnar", "reference"):
            fast_path = engine != "reference"
            cfg = SchedulerConfig(engine=engine, fast_path=fast_path,
                                  columnar_threshold=128)
            for n in (8, 128, 4096):
                assert cfg.selects_columnar(n) == (
                    cfg.engine_cls(n) is ColumnarWaveEngine
                )

    def test_trace_compat_vetoes_columnar(self):
        cfg = SchedulerConfig(engine="columnar", trace_compat=True)
        assert cfg.selects_columnar(4096) is False

    def test_unknown_engine_rejected(self):
        with pytest.raises(SchedulingError, match="unknown engine"):
            SchedulerConfig(engine="turbo")

    def test_engine_contradicting_fast_path_rejected(self):
        with pytest.raises(SchedulingError, match="contradicts"):
            SchedulerConfig(engine="columnar", fast_path=False)

    def test_bad_threshold_rejected(self):
        with pytest.raises(SchedulingError, match="columnar_threshold"):
            SchedulerConfig(columnar_threshold=0)

    def test_trace_cap_applied_per_instance(self):
        cfg = SchedulerConfig(trace_wave_cap=2)
        engine = cfg.engine_factory()(CSTNetwork.of_size(8))
        assert engine.trace.PER_WAVE_CAP == 2
        # the ClassVar itself is untouched
        assert EngineTrace.PER_WAVE_CAP != 2

    def test_engines_produce_identical_schedules(self):
        workload = cs((0, 7), (1, 2), (3, 6))
        fast = SchedulerConfig(fast_path=True).build().schedule(workload)
        ref = SchedulerConfig(fast_path=False).build().schedule(workload)
        assert fast.rounds == ref.rounds
        assert fast.power.total_units == ref.power.total_units


class TestSerialization:
    def test_round_trip(self):
        cfg = SchedulerConfig(fast_path=False, trace_wave_cap=16, strict=False)
        assert SchedulerConfig.from_dict(cfg.to_dict()) == cfg

    def test_round_trip_preserves_engine_selection(self):
        cfg = SchedulerConfig(
            engine="columnar", columnar_threshold=512, trace_compat=False
        )
        restored = SchedulerConfig.from_dict(cfg.to_dict())
        assert restored == cfg
        assert restored.selects_columnar(512) is True

    def test_cache_signature_distinguishes_engines(self):
        assert (
            SchedulerConfig(engine="columnar").cache_signature()
            != SchedulerConfig(engine="fast").cache_signature()
        )

    def test_unknown_keys_rejected(self):
        with pytest.raises(SchedulingError, match="unknown"):
            SchedulerConfig.from_dict({"not_a_field": 1})

    def test_negative_trace_cap_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(trace_wave_cap=-1)

    def test_cache_signature_distinguishes_configs(self):
        assert (
            SchedulerConfig().cache_signature()
            != SchedulerConfig(fast_path=False).cache_signature()
        )
        assert (
            SchedulerConfig().cache_signature()
            == SchedulerConfig().cache_signature()
        )


class TestBuilders:
    def test_build_stream_forwards_config(self):
        cfg = SchedulerConfig(fresh_network_per_step=True, verify_steps=False)
        stream = cfg.build_stream()
        assert stream.fresh_network_per_step is True
        assert stream.verify is False
        assert stream.config is cfg
