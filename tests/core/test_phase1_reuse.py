"""Phase-1 reuse: cached counters must be indistinguishable from a re-run."""

import numpy as np

from repro.comms.generators import crossing_chain, random_well_nested
from repro.core.csa import PADRScheduler
from repro.cst.network import CSTNetwork

N = 32


def _rounds(schedule):
    return [(r.performed, r.writers) for r in schedule.rounds]


class TestPhase1Reuse:
    def test_repeated_set_identical_schedule(self):
        cset = crossing_chain(4, N)
        reuse = PADRScheduler(reuse_phase1=True)
        plain = PADRScheduler(reuse_phase1=False)
        first = reuse.schedule(cset, network=CSTNetwork.of_size(N))
        second = reuse.schedule(cset, network=CSTNetwork.of_size(N))
        reference = plain.schedule(cset, network=CSTNetwork.of_size(N))
        assert _rounds(first) == _rounds(second) == _rounds(reference)
        assert first.power.total_units == second.power.total_units

    def test_cache_hit_skips_exactly_one_wave(self):
        """The second run omits Phase 1's 2N−2-message upward wave."""
        cset = crossing_chain(4, N)
        reuse = PADRScheduler(reuse_phase1=True)
        first = reuse.schedule(cset, network=CSTNetwork.of_size(N))
        second = reuse.schedule(cset, network=CSTNetwork.of_size(N))
        assert first.control_messages - second.control_messages == 2 * N - 2

    def test_role_change_invalidates_cache(self):
        """A different set must trigger a fresh Phase 1, not stale counters."""
        rng = np.random.default_rng(11)
        a = random_well_nested(5, N, rng)
        b = random_well_nested(5, N, rng)
        reuse = PADRScheduler(reuse_phase1=True)
        plain = PADRScheduler(reuse_phase1=False)
        reuse.schedule(a, network=CSTNetwork.of_size(N))
        got = reuse.schedule(b, network=CSTNetwork.of_size(N))
        want = plain.schedule(b, network=CSTNetwork.of_size(N))
        assert _rounds(got) == _rounds(want)
        assert got.control_messages == want.control_messages

    def test_mutated_counters_never_leak_into_cache(self):
        """Phase 2 drains the stored counters; a later cache hit must see
        the pristine Phase-1 values, not the drained ones."""
        cset = crossing_chain(4, N)
        reuse = PADRScheduler(reuse_phase1=True)
        reuse.schedule(cset, network=CSTNetwork.of_size(N))
        # first run drained its states in place; cached copies must be intact.
        assert reuse._phase1_states is not None
        assert any(st.matched for st in reuse._phase1_states.values())
        # and a third run still schedules everything.
        s = reuse.schedule(cset, network=CSTNetwork.of_size(N))
        delivered = {c for r in s.rounds for c in r.performed}
        assert delivered == set(cset)

    def test_fault_state_change_invalidates_cache(self):
        """A mid-stream inject() changes the network's fault signature, so
        the cached Phase-1 counters must not be served for it; clearing the
        faults restores the original signature and the cache hit returns."""
        from repro.cst.faults import DeadSwitchFault, clear_faults, inject

        cset = crossing_chain(4, N)
        reuse = PADRScheduler(
            reuse_phase1=True, strict=False, check_postconditions=False
        )
        net = CSTNetwork.of_size(N)
        first = reuse.schedule(cset, network=net)
        saving = 2 * N - 2  # the upward wave a cache hit skips

        inject(net, 1, DeadSwitchFault())
        faulted = reuse.schedule(cset, network=net)
        # signature changed: full Phase 1 re-run, no stale-cache saving
        assert faulted.control_messages == first.control_messages

        clear_faults(net)
        healed = reuse.schedule(cset, network=net)
        # signature changed again (fault cleared): another full run, which
        # re-primes the single-entry cache under the healthy signature...
        assert healed.control_messages == first.control_messages
        again = reuse.schedule(cset, network=net)
        # ...so only now does the reuse saving reappear.
        assert again.control_messages == first.control_messages - saving

    def test_stream_scheduler_reuse_matches_fresh(self):
        """End to end: the stream's reuse path and the fresh-network control
        condition perform the same communications each step."""
        from repro.extensions.stream import StreamScheduler

        cset = crossing_chain(4, N)
        persistent = StreamScheduler().run([cset] * 3, N)
        fresh = StreamScheduler(fresh_network_per_step=True).run([cset] * 3, N)
        for p_step, f_step in zip(persistent.steps, fresh.steps):
            assert _rounds(p_step.schedule) == _rounds(f_step.schedule)
