"""Unit tests for schedule result types."""

from repro.comms.communication import Communication, CommunicationSet
from repro.core.schedule import RoundRecord, Schedule, ScheduleStats
from repro.cst.power import PowerMeter


def make_schedule():
    cset = CommunicationSet([Communication(0, 1), Communication(2, 3)])
    meter = PowerMeter()
    meter.charge(4, 2)
    meter.note_change(4)
    rounds = (
        RoundRecord(0, (Communication(0, 1),), (0,), {4: ()}),
        RoundRecord(1, (Communication(2, 3),), (2,), {5: ()}),
    )
    return Schedule(
        cset,
        8,
        "test-sched",
        rounds,
        meter.report(2),
        control_messages=10,
        control_words=30,
    )


class TestSchedule:
    def test_n_rounds(self):
        assert make_schedule().n_rounds == 2

    def test_performed_in_round_order(self):
        s = make_schedule()
        assert list(s.performed()) == [Communication(0, 1), Communication(2, 3)]

    def test_round_of(self):
        s = make_schedule()
        mapping = s.round_of()
        assert mapping[Communication(0, 1)] == 0
        assert mapping[Communication(2, 3)] == 1

    def test_round_record_len(self):
        s = make_schedule()
        assert len(s.rounds[0]) == 1

    def test_repr_mentions_name(self):
        assert "test-sched" in repr(make_schedule())


class TestScheduleStats:
    def test_stats_fields(self):
        stats = make_schedule().stats(width=1)
        assert stats.n_comms == 2
        assert stats.n_rounds == 2
        assert stats.width == 1
        assert stats.total_power_units == 2
        assert stats.max_switch_config_changes == 1
        assert stats.control_messages == 10

    def test_rounds_over_width(self):
        stats = make_schedule().stats(width=1)
        assert stats.rounds_over_width == 2.0

    def test_zero_width_ratio(self):
        stats = ScheduleStats(0, 0, 0, 0, 0, 0, 0, 0)
        assert stats.rounds_over_width == 0.0

    def test_row_keys(self):
        row = make_schedule().stats(width=2).row()
        assert row["rounds"] == 2
        assert row["rounds/width"] == 1.0
        assert "power_total" in row
