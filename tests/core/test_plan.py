"""Tests for the general planner: arbitrary sets through the PADR core."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.decompose import decompose
from repro.comms.generators import paper_figure2_set, random_arbitrary
from repro.core.base import ScheduleResult
from repro.core.csa import PADRScheduler
from repro.core.config import SchedulerConfig
from repro.core.plan import GENERAL_SCHEDULER_NAME, GeneralSchedule, schedule_general
from repro.core.schedule import Schedule
from repro.exceptions import NotWellNestedError, SchedulingError
from repro.io import result_from_dict, result_to_dict, schedule_to_dict
from tests.conftest import arbitrary_set_st


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


def crossing_mixed():
    """A 4-pair set with a right crossing and a left pair."""
    return cs((0, 2), (1, 3), (7, 4), (5, 6))


class TestScheduleGeneral:
    def test_delivers_every_pair_exactly_once(self):
        cset = crossing_mixed()
        gs = schedule_general(cset, n_leaves=8)
        assert isinstance(gs, GeneralSchedule)
        assert sorted(gs.combined.performed()) == sorted(cset.comms)
        assert gs.delivered == tuple(sorted(cset.comms))
        assert gs.undelivered == ()

    def test_random_arbitrary_end_to_end(self):
        rng = np.random.default_rng(11)
        cset = random_arbitrary(20, 64, rng)
        gs = schedule_general(cset, n_leaves=64)
        assert set(gs.delivered) == set(cset.comms)
        assert gs.rounds_used >= gs.optimum_rounds >= 1
        assert gs.n_batches >= gs.lower_bound >= 1

    def test_well_nested_input_is_one_trivial_batch(self):
        cset = paper_figure2_set()
        direct = PADRScheduler().schedule(cset, n_leaves=16)
        gs = schedule_general(cset, n_leaves=16)
        assert gs.n_batches == 1
        assert gs.round_overhead == 0
        assert schedule_to_dict(gs.combined) == schedule_to_dict(direct)

    def test_combined_schedule_carries_general_name(self):
        gs = schedule_general(crossing_mixed(), n_leaves=8)
        assert gs.scheduler_name == GENERAL_SCHEDULER_NAME
        assert gs.combined.scheduler_name == GENERAL_SCHEDULER_NAME

    def test_packing_reaches_width_optimum_on_edge_disjoint_batches(self):
        # the two crossing right pairs and the two left pairs are
        # edge-compatible across orientations: packing at alpha=0 merges
        # the decomposed rounds back down to the input's width.
        gs = schedule_general(crossing_mixed(), n_leaves=8)
        assert gs.rounds_used == gs.optimum_rounds
        assert gs.merged_rounds > 0
        assert gs.overhead_ratio == 1.0

    def test_alpha_negative_rejected(self):
        with pytest.raises(SchedulingError):
            schedule_general(cs((0, 2), (1, 3)), n_leaves=4, alpha=-1.0)

    def test_oversized_set_rejected(self):
        with pytest.raises(SchedulingError):
            schedule_general(cs((0, 9)), n_leaves=8)

    def test_alpha_variants_still_deliver_everything(self):
        rng = np.random.default_rng(3)
        cset = random_arbitrary(12, 32, rng)
        for alpha in (0.0, 0.5, 10.0):
            gs = schedule_general(cset, n_leaves=32, alpha=alpha)
            assert set(gs.delivered) == set(cset.comms), alpha
            assert gs.alpha == alpha

    def test_alpha_zero_minimises_rounds_among_variants(self):
        rng = np.random.default_rng(9)
        cset = random_arbitrary(16, 64, rng)
        rounds = {
            alpha: schedule_general(cset, n_leaves=64, alpha=alpha).rounds_used
            for alpha in (0.0, 10.0)
        }
        assert rounds[0.0] <= rounds[10.0]

    def test_deterministic(self):
        rng = np.random.default_rng(21)
        cset = random_arbitrary(10, 32, rng)
        a = schedule_general(cset, n_leaves=32)
        b = schedule_general(cset, n_leaves=32)
        assert schedule_to_dict(a.combined) == schedule_to_dict(b.combined)

    def test_explicit_decomposition_is_honoured(self):
        cset = cs((0, 2), (1, 3))
        dec = decompose(cset)
        gs = schedule_general(cset, n_leaves=4, decomposition=dec)
        assert gs.decomposition is dec
        assert gs.n_batches == dec.n_batches


class TestSchedulerDecomposeModes:
    def test_auto_lowers_arbitrary_sets(self):
        s = PADRScheduler()
        gs = s.schedule(crossing_mixed(), n_leaves=8, decompose="auto")
        assert isinstance(gs, GeneralSchedule)
        assert set(gs.delivered) == set(crossing_mixed().comms)

    def test_strict_default_rejects_arbitrary_sets(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            PADRScheduler().schedule(crossing_mixed(), n_leaves=8)

    def test_never_pre_rejects(self):
        with pytest.raises(NotWellNestedError):
            PADRScheduler().schedule(
                cs((0, 2), (1, 3)), n_leaves=4, decompose="never"
            )

    def test_invalid_mode_rejected(self):
        with pytest.raises(SchedulingError):
            PADRScheduler().schedule(cs((0, 1)), n_leaves=2, decompose="maybe")

    def test_config_mode_is_the_default(self):
        cfg = SchedulerConfig(decompose="auto")
        gs = cfg.build().schedule(crossing_mixed(), n_leaves=8)
        assert isinstance(gs, GeneralSchedule)

    def test_auto_on_well_nested_input_is_bit_identical(self):
        cset = paper_figure2_set()
        direct = PADRScheduler().schedule(cset, n_leaves=16)
        auto = PADRScheduler().schedule(cset, n_leaves=16, decompose="auto")
        assert isinstance(auto, Schedule)
        assert schedule_to_dict(auto) == schedule_to_dict(direct)


class TestScheduleResultProtocol:
    def test_general_schedule_conforms(self):
        gs = schedule_general(crossing_mixed(), n_leaves=8)
        assert isinstance(gs, ScheduleResult)
        stats = gs.stats()
        assert stats.n_comms == 4
        assert stats.n_rounds == gs.rounds_used
        assert gs.power_units == gs.combined.power.total_units

    def test_plain_schedule_conforms(self):
        s = PADRScheduler().schedule(paper_figure2_set(), n_leaves=16)
        assert isinstance(s, ScheduleResult)
        assert s.rounds_used == s.n_rounds
        assert s.undelivered == ()


class TestGeneralScheduleSerialization:
    def test_round_trip_preserves_accounting(self):
        rng = np.random.default_rng(17)
        cset = random_arbitrary(10, 32, rng)
        gs = schedule_general(cset, n_leaves=32)
        back = result_from_dict(result_to_dict(gs))
        assert isinstance(back, GeneralSchedule)
        assert back.delivered == gs.delivered
        assert back.rounds_used == gs.rounds_used
        assert back.power_units == gs.power_units
        assert back.n_batches == gs.n_batches
        assert back.lower_bound == gs.lower_bound
        assert back.batch_orientations == gs.batch_orientations
        assert back.summary() == gs.summary()

    def test_result_to_dict_dispatches_both_kinds(self):
        plain = PADRScheduler().schedule(paper_figure2_set(), n_leaves=16)
        general = schedule_general(crossing_mixed(), n_leaves=8)
        assert result_to_dict(plain)["format"] == "cst-padr/schedule"
        assert result_to_dict(general)["format"] == "cst-padr/general-schedule"
        assert isinstance(result_from_dict(result_to_dict(plain)), Schedule)


class TestGeneralProperties:
    @given(cset=arbitrary_set_st(max_pairs=6, n_leaves=32))
    @settings(max_examples=40, deadline=None)
    def test_exactly_once_delivery(self, cset):
        gs = schedule_general(cset, n_leaves=32)
        performed = list(gs.combined.performed())
        assert sorted(performed) == sorted(cset.comms)
        assert len(performed) == len(set(performed))

    @given(cset=arbitrary_set_st(max_pairs=6, n_leaves=32))
    @settings(max_examples=40, deadline=None)
    def test_rounds_bounded_by_sequential_sum(self, cset):
        gs = schedule_general(cset, n_leaves=32)
        assert gs.optimum_rounds <= gs.rounds_used <= gs.sequential_rounds
        assert gs.merged_rounds == gs.sequential_rounds - gs.rounds_used
