"""Unit tests for the CSA control vocabulary."""

import pytest

from repro.exceptions import ProtocolError
from repro.core.control import DownKind, DownWord, StoredState, UpWord


class TestUpWord:
    def test_fields(self):
        w = UpWord(2, 3)
        assert w.sources == 2 and w.destinations == 3

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            UpWord(-1, 0)

    def test_constant_wire_size(self):
        assert UpWord.wire_words() == 2

    def test_str(self):
        assert str(UpWord(1, 0)) == "[S=1, D=0]"


class TestStoredState:
    def test_paper_tuple_order(self):
        st = StoredState(
            matched=2,
            unmatched_left_src=1,
            left_dst=3,
            right_src=4,
            unmatched_right_dst=0,
        )
        # C_S = [M, S_L−M, D_L, S_R, D_R−M]
        assert st.as_tuple() == (2, 1, 3, 4, 0)

    def test_types_4_and_5_mutually_exclusive(self):
        with pytest.raises(ProtocolError):
            StoredState(unmatched_left_src=1, unmatched_right_dst=1)

    def test_negative_counter_rejected(self):
        with pytest.raises(ProtocolError):
            StoredState(matched=-1)

    def test_sources_up(self):
        st = StoredState(unmatched_left_src=2, right_src=3)
        assert st.sources_up == 5

    def test_destinations_up(self):
        st = StoredState(left_dst=1, unmatched_right_dst=4)
        assert st.destinations_up == 5

    def test_exhausted(self):
        assert StoredState().exhausted
        assert not StoredState(matched=1).exhausted
        assert not StoredState(right_src=1).exhausted

    def test_copy_is_independent(self):
        st = StoredState(matched=2)
        cp = st.copy()
        cp.matched -= 1
        assert st.matched == 2

    def test_constant_storage(self):
        assert StoredState.stored_words() == 5


class TestDownWord:
    def test_none_singleton(self):
        assert DownWord.none() is DownWord.none()
        assert DownWord.none().kind is DownKind.NONE

    def test_src_carries_rank(self):
        w = DownWord.src(3)
        assert w.kind is DownKind.SRC and w.x_s == 3 and w.x_d == 0

    def test_dst_carries_rank(self):
        w = DownWord.dst(2)
        assert w.kind is DownKind.DST and w.x_d == 2

    def test_both(self):
        w = DownWord.both(1, 2)
        assert w.kind is DownKind.BOTH and (w.x_s, w.x_d) == (1, 2)

    def test_negative_rank_rejected(self):
        with pytest.raises(ProtocolError):
            DownWord.src(-1)

    def test_rank_on_none_rejected(self):
        with pytest.raises(ProtocolError):
            DownWord(DownKind.NONE, x_s=1)

    def test_dst_rank_on_src_rejected(self):
        with pytest.raises(ProtocolError):
            DownWord(DownKind.SRC, x_s=0, x_d=1)

    def test_wants_flags(self):
        assert DownKind.SRC.wants_source and not DownKind.SRC.wants_destination
        assert DownKind.DST.wants_destination and not DownKind.DST.wants_source
        assert DownKind.BOTH.wants_source and DownKind.BOTH.wants_destination
        assert not DownKind.NONE.wants_source and not DownKind.NONE.wants_destination

    def test_constant_wire_size(self):
        assert DownWord.wire_words() == 3

    def test_paper_kind_notation(self):
        assert DownKind.NONE.value == "[null,null]"
        assert DownKind.SRC.value == "[s,null]"
        assert DownKind.DST.value == "[d,null]"
        assert DownKind.BOTH.value == "[s,d]"
