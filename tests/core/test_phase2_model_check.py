"""Exhaustive model check of CONFIGURE over all small switch states.

Enumerates every stored state with counters ≤ 4 (respecting the type-4/5
exclusivity invariant) and every control word valid for it, and checks
structural invariants of the outcome.  ~3000 (state, word) pairs — a
finite-model sanity net under the property suites.
"""

from itertools import product

import pytest

from repro.core.control import DownKind, DownWord, StoredState
from repro.core.phase2 import configure
from repro.cst.switch import SwitchConfiguration
from repro.types import (
    CONN_DOWN_L,
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_UP,
)


def all_states(limit=4):
    for m, usl, dl, sr, udr in product(range(limit), repeat=5):
        if usl and udr:
            continue  # M = min(S_L, D_R) forbids both
        yield StoredState(
            matched=m,
            unmatched_left_src=usl,
            left_dst=dl,
            right_src=sr,
            unmatched_right_dst=udr,
        )


def valid_words(state):
    yield DownWord.none()
    for x_s in range(state.sources_up):
        yield DownWord.src(x_s)
    for x_d in range(state.destinations_up):
        yield DownWord.dst(x_d)
    for x_s in range(state.sources_up):
        for x_d in range(state.destinations_up):
            yield DownWord.both(x_s, x_d)


def all_cases():
    for base in all_states():
        for word in valid_words(base):
            yield base, word


class TestConfigureModelCheck:
    def test_exhaustive_invariants(self):
        checked = 0
        for base, word in all_cases():
            state = base.copy()
            outcome = configure(1, state, word)
            ctx = f"state={base}, word={word}"

            # I1: staged connections are a legal crossbar (no port reuse)
            SwitchConfiguration(outcome.connections)
            assert len(outcome.connections) <= 3, ctx

            # I2: counters only decrease, each by at most 1
            for before, after in zip(base.as_tuple(), state.as_tuple()):
                assert 0 <= before - after <= 1, ctx
                assert after >= 0, ctx

            # I3: total endpoints removed == demands satisfied
            total_drop = sum(base.as_tuple()) - sum(state.as_tuple())
            expected = (
                int(word.kind.wants_source)
                + int(word.kind.wants_destination)
                + int(outcome.scheduled_matched)
            )
            assert total_drop == expected, ctx

            # I4: matched decremented exactly when a matched pair fired
            assert (base.matched - state.matched == 1) == outcome.scheduled_matched, ctx

            # I5: connections coherent with the words sent to children
            conns = set(outcome.connections)
            lw, rw = outcome.left_word, outcome.right_word
            assert (CONN_L_UP in conns or CONN_L_TO_R in conns) == (
                lw.kind.wants_source
            ), ctx
            assert (CONN_R_UP in conns) == rw.kind.wants_source, ctx
            assert (CONN_DOWN_L in conns) == lw.kind.wants_destination, ctx
            assert (CONN_DOWN_R in conns or CONN_L_TO_R in conns) == (
                rw.kind.wants_destination
            ), ctx

            # I6: child ranks are bounded by what the child can still offer
            # (from this switch's post-update perspective the left child's
            # remaining sources are u_sl + matched still to fire)
            if lw.kind.wants_source:
                assert lw.x_s <= state.unmatched_left_src + state.matched, ctx
            if rw.kind.wants_destination:
                assert rw.x_d <= state.unmatched_right_dst + state.matched, ctx

            checked += 1
        assert checked > 2500  # the enumeration really is exhaustive


class TestConfigureDeterminism:
    def test_same_inputs_same_outputs(self):
        for base, word in all_cases():
            a_state, b_state = base.copy(), base.copy()
            a = configure(1, a_state, word)
            b = configure(1, b_state, word)
            assert a == b
            assert a_state.as_tuple() == b_state.as_tuple()
