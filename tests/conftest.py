"""Shared fixtures and hypothesis strategies for the whole test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import from_dyck_word
from repro.cst.network import CSTNetwork
from repro.cst.topology import CSTTopology


# ---------------------------------------------------------------------------
# plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def topo8() -> CSTTopology:
    return CSTTopology.of(8)


@pytest.fixture
def topo16() -> CSTTopology:
    return CSTTopology.of(16)


@pytest.fixture
def net8() -> CSTNetwork:
    return CSTNetwork.of_size(8)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fig2_set() -> CommunicationSet:
    from repro.comms.generators import paper_figure2_set

    return paper_figure2_set()


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def dyck_word_st(draw, max_pairs: int = 10) -> str:
    """A shrinkable Dyck word with 1..max_pairs pairs."""
    n = draw(st.integers(min_value=1, max_value=max_pairs))
    opens = closes = 0
    chars: list[str] = []
    while closes < n:
        if opens == n:
            chars.append(")")
            closes += 1
        elif opens == closes:
            chars.append("(")
            opens += 1
        else:
            if draw(st.booleans()):
                chars.append("(")
                opens += 1
            else:
                chars.append(")")
                closes += 1
    return "".join(chars)


@st.composite
def wellnested_set_st(
    draw,
    max_pairs: int = 10,
    n_leaves: int = 64,
) -> CommunicationSet:
    """A right-oriented well-nested set on an ``n_leaves``-leaf CST."""
    word = draw(dyck_word_st(max_pairs=max_pairs))
    k = len(word)
    positions = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=n_leaves - 1),
                min_size=k,
                max_size=k,
            )
        )
    )
    return from_dyck_word(word, positions)


@st.composite
def arbitrary_set_st(
    draw,
    max_pairs: int = 8,
    n_leaves: int = 64,
) -> CommunicationSet:
    """An arbitrary pairwise set: crossings and both orientations allowed."""
    k = draw(st.integers(min_value=1, max_value=max_pairs))
    leaves = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=n_leaves - 1),
                min_size=2 * k,
                max_size=2 * k,
            )
        )
    )
    perm = draw(st.permutations(leaves))
    return CommunicationSet(
        [Communication(perm[2 * i], perm[2 * i + 1]) for i in range(k)]
    )


@st.composite
def communication_st(draw, n_leaves: int = 64) -> Communication:
    """An arbitrary (possibly left-oriented) communication."""
    a = draw(st.integers(min_value=0, max_value=n_leaves - 1))
    b = draw(
        st.integers(min_value=0, max_value=n_leaves - 1).filter(lambda x: x != a)
    )
    return Communication(a, b)
