"""Canonical signatures and the LRU schedule cache."""

from __future__ import annotations

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.exceptions import OrientationError, SchedulingError
from repro.obs import MetricsRegistry
from repro.service.cache import ScheduleCache, canonical_signature


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


class TestCanonicalSignature:
    def test_dyck_is_relabelling_invariant(self):
        a = canonical_signature(cs((0, 3), (1, 2)), 8)
        b = canonical_signature(cs((2, 7), (4, 5)), 8)
        assert a.dyck == b.dyck == "(())"
        # ...but the placed profiles (and hence cache keys) differ
        assert a.placed != b.placed
        assert a.cache_key != b.cache_key

    def test_placed_profile_pins_geometry(self):
        a = canonical_signature(cs((0, 3)), 8)
        assert a.placed == "(..)...."
        assert a.n_leaves == 8

    def test_config_is_part_of_the_key(self):
        fast = canonical_signature(cs((0, 1)), 8)
        ref = canonical_signature(
            cs((0, 1)), 8, config=SchedulerConfig(fast_path=False)
        )
        assert fast.cache_key != ref.cache_key

    def test_left_oriented_rejected(self):
        with pytest.raises(OrientationError):
            canonical_signature(cs((3, 0)), 8)

    def test_oversized_set_rejected(self):
        with pytest.raises(SchedulingError, match="does not fit"):
            canonical_signature(cs((0, 12)), 8)


class TestScheduleCache:
    def test_lru_eviction_order(self):
        cache = ScheduleCache(capacity=2)
        k1 = canonical_signature(cs((0, 1)), 8)
        k2 = canonical_signature(cs((2, 3)), 8)
        k3 = canonical_signature(cs((4, 5)), 8)
        cache.put(k1, {"v": 1})
        cache.put(k2, {"v": 2})
        assert cache.get(k1) == {"v": 1}  # k1 now most-recent
        cache.put(k3, {"v": 3})  # evicts k2, the LRU
        assert cache.get(k2) is None
        assert cache.get(k1) == {"v": 1}
        assert cache.get(k3) == {"v": 3}
        assert cache.evictions == 1

    def test_metrics_emitted(self):
        registry = MetricsRegistry()
        cache = ScheduleCache(capacity=1, metrics=registry, run="t")
        key = canonical_signature(cs((0, 1)), 8)
        other = canonical_signature(cs((2, 3)), 8)
        cache.get(key)
        cache.put(key, {})
        cache.get(key)
        cache.put(other, {})  # evicts
        counters = registry.snapshot()["counters"]
        assert counters["service.cache.hits{run=t}"] == 1
        assert counters["service.cache.misses{run=t}"] == 1
        assert counters["service.cache.evictions{run=t}"] == 1

    def test_hit_rate(self):
        cache = ScheduleCache(capacity=4)
        key = canonical_signature(cs((0, 1)), 8)
        cache.get(key)
        cache.put(key, {})
        cache.get(key)
        assert cache.hit_rate == 0.5

    def test_capacity_validated(self):
        with pytest.raises(SchedulingError):
            ScheduleCache(capacity=0)


# ---------------------------------------------------------------------------
# LRU refresh semantics and counter consistency
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class TestCacheRefresh:
    def test_put_existing_refreshes_recency_without_evicting(self):
        cache = ScheduleCache(capacity=2)
        k1 = canonical_signature(cs((0, 1)), 8)
        k2 = canonical_signature(cs((2, 3)), 8)
        k3 = canonical_signature(cs((4, 5)), 8)
        cache.put(k1, {"v": 1})
        cache.put(k2, {"v": 2})
        cache.put(k1, {"v": "fresh"})  # refresh, not a second insert
        assert len(cache) == 2
        assert cache.evictions == 0
        cache.put(k3, {"v": 3})  # k2 is now the LRU, not k1
        assert cache.get(k2) is None
        assert cache.get(k1) == {"v": "fresh"}
        assert cache.get(k3) == {"v": 3}

    def test_refresh_keeps_size_gauge_at_one(self):
        registry = MetricsRegistry()
        cache = ScheduleCache(capacity=2, metrics=registry, run="t")
        k1 = canonical_signature(cs((0, 1)), 8)
        cache.put(k1, {"v": 1})
        cache.put(k1, {"v": 2})
        assert len(cache) == 1
        assert registry.snapshot()["gauges"]["service.cache.size{run=t}"] == 1

    def test_clear_empties_entries_but_keeps_history(self):
        cache = ScheduleCache(capacity=2)
        k1 = canonical_signature(cs((0, 1)), 8)
        cache.get(k1)  # miss
        cache.put(k1, {"v": 1})
        cache.get(k1)  # hit
        cache.clear()
        assert len(cache) == 0
        assert cache.get(k1) is None
        # hit/miss history survives a clear — hit_rate is lifetime.
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.hit_rate == pytest.approx(1 / 3)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["get", "put", "clear"]),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=40,
    )
)
def test_cache_counters_stay_consistent_under_interleavings(ops):
    """hit/miss accounting, bounded size and the size gauge hold under
    any get/put/clear interleaving (the satellite's property test)."""
    registry = MetricsRegistry()
    cache = ScheduleCache(capacity=2, metrics=registry, run="p")
    keys = [canonical_signature(cs((2 * i, 2 * i + 1)), 8) for i in range(4)]
    last_put: dict[int, dict] = {}
    n_gets = 0
    for seq, (op, idx) in enumerate(ops):
        if op == "get":
            n_gets += 1
            got = cache.get(keys[idx])
            # a hit always returns the *latest* payload put for the key
            assert got is None or got == last_put[idx]
        elif op == "put":
            payload = {"v": (idx, seq)}
            cache.put(keys[idx], payload)
            last_put[idx] = payload
            assert cache.get(keys[idx]) == payload
            n_gets += 1
        else:
            cache.clear()
            last_put.clear()
        assert len(cache) <= cache.capacity
        assert cache.hits + cache.misses == n_gets
        expected_rate = cache.hits / n_gets if n_gets else 0.0
        assert cache.hit_rate == pytest.approx(expected_rate)
        gauges = registry.snapshot()["gauges"]
        if "service.cache.size{run=p}" in gauges:
            assert gauges["service.cache.size{run=p}"] == len(cache)


class TestUndersizedWidthRegression:
    """Satellite regression: ``canonical_signature`` used to swallow the
    IndexError from an undersized explicit width and mint the key the set
    would have at its *minimum* width — so a request for ``k`` leaves,
    ``max_pe < k < min_leaves``, silently collided with genuine
    ``min_leaves`` entries in the shared cache."""

    def test_boundary_width_rejected(self):
        cset = cs((0, 4))  # min_leaves == 8
        with pytest.raises(SchedulingError, match="at least 8"):
            canonical_signature(cset, 7)  # k == min_leaves - 1

    def test_every_undersized_width_rejected_no_key_minted(self):
        cset = cs((0, 4))  # max_pe == 4, min_leaves == 8
        for k in (5, 6, 7):
            with pytest.raises(SchedulingError):
                canonical_signature(cset, k)

    def test_legal_boundary_width_still_keys(self):
        cset = cs((0, 4))
        sig = canonical_signature(cset, 8)
        assert sig.n_leaves == 8
        assert canonical_signature(cset, 16).cache_key != sig.cache_key

    def test_default_width_is_the_minimum(self):
        cset = cs((0, 4))
        assert canonical_signature(cset, None).n_leaves == 8
