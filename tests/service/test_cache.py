"""Canonical signatures and the LRU schedule cache."""

from __future__ import annotations

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.exceptions import OrientationError, SchedulingError
from repro.obs import MetricsRegistry
from repro.service.cache import ScheduleCache, canonical_signature


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


class TestCanonicalSignature:
    def test_dyck_is_relabelling_invariant(self):
        a = canonical_signature(cs((0, 3), (1, 2)), 8)
        b = canonical_signature(cs((2, 7), (4, 5)), 8)
        assert a.dyck == b.dyck == "(())"
        # ...but the placed profiles (and hence cache keys) differ
        assert a.placed != b.placed
        assert a.cache_key != b.cache_key

    def test_placed_profile_pins_geometry(self):
        a = canonical_signature(cs((0, 3)), 8)
        assert a.placed == "(..)...."
        assert a.n_leaves == 8

    def test_config_is_part_of_the_key(self):
        fast = canonical_signature(cs((0, 1)), 8)
        ref = canonical_signature(
            cs((0, 1)), 8, config=SchedulerConfig(fast_path=False)
        )
        assert fast.cache_key != ref.cache_key

    def test_left_oriented_rejected(self):
        with pytest.raises(OrientationError):
            canonical_signature(cs((3, 0)), 8)

    def test_oversized_set_rejected(self):
        with pytest.raises(SchedulingError, match="does not fit"):
            canonical_signature(cs((0, 12)), 8)


class TestScheduleCache:
    def test_lru_eviction_order(self):
        cache = ScheduleCache(capacity=2)
        k1 = canonical_signature(cs((0, 1)), 8)
        k2 = canonical_signature(cs((2, 3)), 8)
        k3 = canonical_signature(cs((4, 5)), 8)
        cache.put(k1, {"v": 1})
        cache.put(k2, {"v": 2})
        assert cache.get(k1) == {"v": 1}  # k1 now most-recent
        cache.put(k3, {"v": 3})  # evicts k2, the LRU
        assert cache.get(k2) is None
        assert cache.get(k1) == {"v": 1}
        assert cache.get(k3) == {"v": 3}
        assert cache.evictions == 1

    def test_metrics_emitted(self):
        registry = MetricsRegistry()
        cache = ScheduleCache(capacity=1, metrics=registry, run="t")
        key = canonical_signature(cs((0, 1)), 8)
        other = canonical_signature(cs((2, 3)), 8)
        cache.get(key)
        cache.put(key, {})
        cache.get(key)
        cache.put(other, {})  # evicts
        counters = registry.snapshot()["counters"]
        assert counters["service.cache.hits{run=t}"] == 1
        assert counters["service.cache.misses{run=t}"] == 1
        assert counters["service.cache.evictions{run=t}"] == 1

    def test_hit_rate(self):
        cache = ScheduleCache(capacity=4)
        key = canonical_signature(cs((0, 1)), 8)
        cache.get(key)
        cache.put(key, {})
        cache.get(key)
        assert cache.hit_rate == 0.5

    def test_capacity_validated(self):
        with pytest.raises(SchedulingError):
            ScheduleCache(capacity=0)
