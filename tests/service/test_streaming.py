"""StreamingSchedulerService: overload drill, fairness, accountability.

The three ISSUE-mandated suites — the admission burst drill (reaches
SOFT_RED/RED, sheds only LOW, recovers GREEN), the hypothesis
no-silent-drop property (every submit settles in exactly one terminal
status), and two-tenant fairness under a hog — plus coverage for every
door rejection, expiry, the retry ladder, dedup/cache settlement, the
columnar batch window, parity, asyncio equivalence and persistence.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.service.streaming as streaming_mod
from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.exceptions import SchedulingError
from repro.io import (
    schedule_to_dict,
    stream_request_from_dict,
    stream_request_to_dict,
)
from repro.obs import Instrumentation, MetricsRegistry
from repro.obs.registry import metric_key
from repro.service import (
    AdmissionState,
    Priority,
    ServiceParityError,
    StreamRequest,
    StreamStatus,
    StreamingSchedulerService,
    TenantQuota,
    mixed_workloads,
)

TERMINAL = frozenset(StreamStatus)


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


def roomy_quota() -> TenantQuota:
    """A bucket wide enough that quota never interferes with the test."""
    return TenantQuota(rate=50.0, burst=100.0)


# ---------------------------------------------------------------------------
# the overload drill (the ISSUE's acceptance scenario, at unit scale)
# ---------------------------------------------------------------------------


class TestOverloadBurst:
    @pytest.fixture(scope="class")
    def report(self):
        csets = mixed_workloads(8, 5, seed=2)
        arrivals = [
            StreamRequest(
                cset=csets[i % len(csets)],
                n_leaves=8,
                release_time=i // 4,
                deadline=200,
                priority=(Priority.LOW, Priority.NORMAL, Priority.HIGH)[i % 3],
                tenant=("acme", "globex")[i % 2],
            )
            for i in range(48)
        ]
        svc = StreamingSchedulerService(
            max_queue=22,
            max_inflight=2,
            default_quota=roomy_quota(),
            parity_check=True,
        )
        return svc.run(arrivals)

    def test_burst_reaches_red(self, report):
        states = {s for _, s in report.trajectory}
        assert "SOFT_RED" in states
        assert "RED" in states

    def test_only_low_is_dropped(self, report):
        for status in (StreamStatus.SHED, StreamStatus.EXPIRED,
                       StreamStatus.REJECTED):
            dropped = report.by_priority(status)
            assert set(dropped) <= {"LOW"}, f"{status}: {dropped}"

    def test_something_was_actually_shed(self, report):
        # guard against a vacuous drill: the burst must exercise shedding
        assert report.n_shed > 0

    def test_normal_and_high_all_delivered(self, report):
        done = report.by_priority(StreamStatus.DONE)
        assert done.get("NORMAL", 0) == 16
        assert done.get("HIGH", 0) == 16

    def test_recovers_to_green(self, report):
        assert report.final_state == "GREEN"
        assert report.trajectory[-1][1] == "GREEN"

    def test_every_submit_is_accounted(self, report):
        assert sorted(report.results) == list(range(48))
        assert (
            report.n_done + report.n_shed + report.n_rejected
            + report.n_expired + report.n_failed
        ) == 48

    def test_latency_percentiles_are_ordered(self, report):
        assert 0 < report.p50_ticks <= report.p99_ticks <= report.ticks

    def test_parity_with_direct_scheduler(self, report):
        # parity_check=True already live-asserted every settlement; spot
        # check the serialized payloads once more from the outside.
        direct = PADRScheduler()
        for result in list(report.results.values())[:6]:
            if result.status is StreamStatus.DONE:
                cset = result.schedule  # round-trips the payload
                assert cset is not None

    def test_summary_mentions_final_state(self, report):
        assert "final state GREEN" in report.summary()


# ---------------------------------------------------------------------------
# no silent drops (property)
# ---------------------------------------------------------------------------


POOL = mixed_workloads(8, 5, seed=7)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(POOL) - 1),
            st.sampled_from(list(Priority)),
            st.integers(min_value=0, max_value=6),   # release_time
            st.integers(min_value=1, max_value=40),  # deadline
            st.sampled_from(["a", "b"]),
        ),
        min_size=1,
        max_size=24,
    )
)
def test_no_submit_is_ever_silently_dropped(spec):
    arrivals = [
        StreamRequest(
            cset=POOL[idx],
            n_leaves=8,
            release_time=release,
            deadline=deadline,
            priority=priority,
            tenant=tenant,
        )
        for idx, priority, release, deadline, tenant in spec
    ]
    svc = StreamingSchedulerService(
        max_queue=8, max_inflight=2, default_quota=TenantQuota(rate=4.0, burst=8.0)
    )
    report = svc.run(arrivals, max_ticks=500)
    # exactly one terminal result per submit, no extras, no holes
    assert sorted(report.results) == list(range(len(arrivals)))
    assert all(r.status in TERMINAL for r in report.results.values())
    # and the counts tile the total exactly
    assert (
        report.n_done + report.n_shed + report.n_rejected
        + report.n_expired + report.n_failed
    ) == len(arrivals)
    # the drain contract: the machine always hands back a calm service
    assert report.final_state == "GREEN"
    assert svc.backlog == 0


# ---------------------------------------------------------------------------
# two-tenant fairness
# ---------------------------------------------------------------------------


class TestTenantFairness:
    def test_starved_tenant_still_progresses_under_hog_load(self):
        csets = mixed_workloads(8, 5, seed=4)
        hog = [
            StreamRequest(cset=csets[i % len(csets)], n_leaves=8,
                          deadline=200, tenant="hog")
            for i in range(20)
        ]
        meek = [
            StreamRequest(cset=csets[i % len(csets)], n_leaves=8,
                          deadline=200, tenant="meek")
            for i in range(4)
        ]
        svc = StreamingSchedulerService(
            max_queue=64, max_inflight=2, default_quota=roomy_quota()
        )
        report = svc.run([*hog, *meek])

        results = list(report.results.values())
        meek_done = [r for r in results if r.tenant == "meek"]
        assert all(r.status is StreamStatus.DONE for r in meek_done)
        # DRR deals the per-tick budget across tenants, so the meek
        # tenant's 4 requests finish in the first few ticks instead of
        # waiting behind the hog's 20.
        assert max(r.latency_ticks for r in meek_done) <= 6
        hog_done = [r for r in results if r.tenant == "hog"]
        assert max(r.latency_ticks for r in hog_done) > max(
            r.latency_ticks for r in meek_done
        )

    def test_weight_tilts_the_split(self):
        csets = mixed_workloads(8, 3, seed=5)
        svc = StreamingSchedulerService(
            max_queue=64,
            max_inflight=2,
            quotas={
                "heavy": TenantQuota(rate=50.0, burst=100.0, weight=3.0),
                "light": TenantQuota(rate=50.0, burst=100.0, weight=1.0),
            },
        )
        arrivals = [
            StreamRequest(cset=csets[i % len(csets)], n_leaves=8,
                          deadline=200, tenant=tenant)
            for tenant in ("heavy", "light")
            for i in range(8)
        ]
        report = svc.run(arrivals)
        heavy = [r for r in report.results.values() if r.tenant == "heavy"]
        light = [r for r in report.results.values() if r.tenant == "light"]
        assert all(r.status is StreamStatus.DONE for r in [*heavy, *light])
        # 3:1 weighting: the heavy tenant clears its queue strictly sooner
        assert max(r.latency_ticks for r in heavy) < max(
            r.latency_ticks for r in light
        )


# ---------------------------------------------------------------------------
# the doors: every rejection path is a terminal result, not an exception
# ---------------------------------------------------------------------------


class TestDoors:
    def test_invalid_cset_is_rejected_with_reason(self):
        svc = StreamingSchedulerService()
        ticket = svc.submit(
            StreamRequest(cset=cs((5, 2)), n_leaves=8)  # left-oriented
        )
        assert not ticket.accepted
        assert "right-oriented" in (ticket.reason or "")
        result = svc.results[ticket.id]
        assert result.status is StreamStatus.REJECTED
        assert result.error

    def test_nonpositive_deadline_is_rejected(self):
        svc = StreamingSchedulerService()
        ticket = svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=0))
        assert not ticket.accepted
        assert svc.results[ticket.id].status is StreamStatus.REJECTED

    def test_backlog_bound_rejects_overflow(self):
        svc = StreamingSchedulerService(max_queue=1, default_quota=roomy_quota())
        first = svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8))
        second = svc.submit(StreamRequest(cset=cs((2, 3)), n_leaves=8))
        assert first.accepted
        assert not second.accepted
        assert "backlog full" in (second.reason or "")

    def test_quota_throttles_a_burst(self):
        svc = StreamingSchedulerService(
            default_quota=TenantQuota(rate=1.0, burst=1.0)
        )
        tickets = [
            svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8))
            for _ in range(3)
        ]
        assert tickets[0].accepted
        assert not tickets[1].accepted and not tickets[2].accepted
        assert "over quota" in (tickets[1].reason or "")

    def test_constructor_validates_bounds(self):
        for kwargs in (
            {"max_queue": 0},
            {"max_inflight": 0},
            {"batch_window": -1},
            {"max_retries": -1},
        ):
            with pytest.raises(SchedulingError):
                StreamingSchedulerService(**kwargs)


# ---------------------------------------------------------------------------
# deadlines, retries, failures
# ---------------------------------------------------------------------------


class TestDeadlinesAndRetries:
    def test_queued_past_deadline_expires(self):
        svc = StreamingSchedulerService(
            max_inflight=1, default_quota=roomy_quota()
        )
        csets = mixed_workloads(8, 5, seed=6)
        arrivals = [
            StreamRequest(cset=csets[i], n_leaves=8, deadline=2)
            for i in range(5)
        ]
        report = svc.run(arrivals)
        assert report.n_expired > 0
        assert report.n_done + report.n_expired == 5
        expired = [
            r for r in report.results.values()
            if r.status is StreamStatus.EXPIRED
        ]
        assert all(r.latency_ticks > 2 for r in expired)

    def test_transient_failure_retries_with_backoff_then_succeeds(
        self, monkeypatch
    ):
        real = streaming_mod.schedule_request
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] <= 2:
                return (request[0], "transient", "induced")
            return real(request)

        monkeypatch.setattr(streaming_mod, "schedule_request", flaky)
        svc = StreamingSchedulerService(default_quota=roomy_quota())
        svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=50))
        report = svc.run()
        (result,) = report.results.values()
        assert result.status is StreamStatus.DONE
        assert result.attempts == 3

    def test_retry_budget_exhaustion_fails(self, monkeypatch):
        monkeypatch.setattr(
            streaming_mod,
            "schedule_request",
            lambda request: (request[0], "transient", "always down"),
        )
        svc = StreamingSchedulerService(
            max_retries=1, default_quota=roomy_quota()
        )
        svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=50))
        report = svc.run()
        (result,) = report.results.values()
        assert result.status is StreamStatus.FAILED
        assert result.attempts == 2
        assert "always down" in (result.error or "")

    def test_permanent_failure_does_not_retry(self, monkeypatch):
        monkeypatch.setattr(
            streaming_mod,
            "schedule_request",
            lambda request: (request[0], "permanent", "unschedulable"),
        )
        svc = StreamingSchedulerService(default_quota=roomy_quota())
        svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=50))
        report = svc.run()
        (result,) = report.results.values()
        assert result.status is StreamStatus.FAILED
        assert result.attempts == 1


# ---------------------------------------------------------------------------
# the drain path: cache, dedup, columnar grouping, parity
# ---------------------------------------------------------------------------


class TestDrainPath:
    def test_duplicate_submissions_settle_from_cache(self):
        svc = StreamingSchedulerService(
            max_inflight=4, default_quota=roomy_quota()
        )
        workload = cs((0, 3), (1, 2))
        for _ in range(3):
            svc.submit(StreamRequest(cset=workload, n_leaves=8, deadline=50))
        report = svc.run()
        assert report.n_done == 3
        assert report.n_cached == 2  # one leader executed, two from cache
        payloads = [r.payload for r in report.results.values()]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_resubmission_across_windows_hits_the_cache(self):
        svc = StreamingSchedulerService(default_quota=roomy_quota())
        workload = cs((0, 1))
        svc.submit(StreamRequest(cset=workload, n_leaves=8, deadline=50))
        svc.run()
        svc.submit(StreamRequest(cset=workload, n_leaves=8, deadline=50))
        report = svc.run()
        twin = report.results[1]
        assert twin.status is StreamStatus.DONE
        assert twin.from_cache  # same canonical key, later window
        assert twin.payload == report.results[0].payload

    def test_same_shape_requests_take_the_batch_kernel(self):
        reg = MetricsRegistry()
        obs = Instrumentation(reg, run="t")
        svc = StreamingSchedulerService(
            config=SchedulerConfig(engine="columnar"),
            max_inflight=4,
            default_quota=roomy_quota(),
            obs=obs,
        )
        # same dyck shape, disjoint placements: one columnar batch of two
        svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=50))
        svc.submit(StreamRequest(cset=cs((4, 5)), n_leaves=8, deadline=50))
        report = svc.run()
        assert report.n_done == 2
        snap = reg.snapshot()
        assert snap["counters"][metric_key("stream.shape_batches", {"run": "t"})] == 1
        assert snap["counters"][metric_key("stream.shape_batched", {"run": "t"})] == 2

    def test_batch_window_holds_a_lone_leader_for_peers(self):
        reg = MetricsRegistry()
        obs = Instrumentation(reg, run="t")
        svc = StreamingSchedulerService(
            config=SchedulerConfig(engine="columnar"),
            batch_window=2,
            default_quota=roomy_quota(),
            obs=obs,
        )
        svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=50))
        # the shape peer only becomes eligible at tick 2, so the first
        # request is a lone leader at tick 1 and must wait for it.
        svc.submit(
            StreamRequest(
                cset=cs((4, 5)), n_leaves=8, deadline=50, release_time=2
            )
        )
        report = svc.run()
        assert report.n_done == 2
        snap = reg.snapshot()
        assert snap["counters"][metric_key("stream.batch_held", {"run": "t"})] >= 1
        assert snap["counters"][metric_key("stream.shape_batches", {"run": "t"})] == 1

    def test_results_bit_identical_to_direct_scheduler(self):
        csets = mixed_workloads(16, 6, seed=8)
        svc = StreamingSchedulerService(default_quota=roomy_quota())
        for c in csets:
            svc.submit(StreamRequest(cset=c, n_leaves=16, deadline=100))
        report = svc.run()
        direct = PADRScheduler()
        for rid, c in enumerate(csets):
            expected = schedule_to_dict(direct.schedule(c, n_leaves=16))
            assert report.results[rid].payload == expected

    def test_parity_violation_raises(self, monkeypatch):
        real = streaming_mod.schedule_request

        def corrupting(request):
            rid, status, payload = real(request)
            if status == "ok":
                payload = dict(payload, n_leaves=payload["n_leaves"] * 2)
            return (rid, status, payload)

        monkeypatch.setattr(streaming_mod, "schedule_request", corrupting)
        svc = StreamingSchedulerService(
            parity_check=True, default_quota=roomy_quota()
        )
        svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=50))
        with pytest.raises(ServiceParityError):
            svc.run()


# ---------------------------------------------------------------------------
# asyncio, metrics, persistence
# ---------------------------------------------------------------------------


class TestAsyncAndPlumbing:
    def arrivals(self):
        csets = mixed_workloads(8, 4, seed=9)
        return [
            StreamRequest(
                cset=csets[i % len(csets)],
                n_leaves=8,
                release_time=i // 2,
                deadline=100,
                priority=(Priority.LOW, Priority.NORMAL)[i % 2],
            )
            for i in range(8)
        ]

    def test_aserve_matches_run(self):
        sync = StreamingSchedulerService(default_quota=roomy_quota())
        sync_report = sync.run(self.arrivals())
        awaited = StreamingSchedulerService(default_quota=roomy_quota())
        async_report = asyncio.run(awaited.aserve(self.arrivals()))
        assert {
            rid: r.status for rid, r in sync_report.results.items()
        } == {rid: r.status for rid, r in async_report.results.items()}
        assert sync_report.ticks == async_report.ticks

    def test_runaway_bound_raises_instead_of_truncating(self):
        svc = StreamingSchedulerService(
            max_inflight=1, default_quota=roomy_quota()
        )
        csets = mixed_workloads(8, 5, seed=10)
        for c in csets:
            svc.submit(StreamRequest(cset=c, n_leaves=8, deadline=100))
        with pytest.raises(SchedulingError):
            svc.run(max_ticks=1)

    def test_stream_metrics_are_emitted(self):
        reg = MetricsRegistry()
        obs = Instrumentation(reg, run="t")
        svc = StreamingSchedulerService(default_quota=roomy_quota(), obs=obs)
        svc.submit(StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=50))
        svc.run()
        snap = reg.snapshot()
        assert snap["counters"][metric_key("stream.submitted", {"run": "t"})] == 1
        assert snap["counters"][metric_key("stream.done", {"run": "t"})] == 1
        key = metric_key("stream.latency", {"priority": "normal", "run": "t"})
        assert snap["histograms"][key]["count"] == 1

    def test_stream_request_round_trips_through_json(self):
        request = StreamRequest(
            cset=cs((0, 3), (1, 2)),
            n_leaves=8,
            release_time=3,
            deadline=17,
            priority=Priority.HIGH,
            tenant="acme",
        )
        back = stream_request_from_dict(stream_request_to_dict(request))
        assert back.cset == request.cset
        assert back.n_leaves == request.n_leaves
        assert back.release_time == request.release_time
        assert back.deadline == request.deadline
        assert back.priority is Priority.HIGH
        assert back.tenant == "acme"


# ---------------------------------------------------------------------------
# the deadline boundary contract
# ---------------------------------------------------------------------------


class TestDeadlineBoundary:
    """A request is alive *at* ``deadline_tick`` — served exactly then it
    settles DONE with ``latency_ticks == deadline``; it expires at
    ``deadline_tick + 1``.  The batch-window holdback counts slack with
    the same convention, so holding never expires a lone leader."""

    def _settle_fourth(self, victim_deadline: int):
        svc = StreamingSchedulerService(
            max_inflight=1, default_quota=roomy_quota()
        )
        # three fillers ahead of the victim: with one execution slot the
        # victim is reached exactly at tick 4.
        for pair in ((0, 1), (2, 3), (4, 5)):
            assert svc.submit(
                StreamRequest(cset=cs(pair), n_leaves=8, deadline=50)
            ).accepted
        ticket = svc.submit(
            StreamRequest(cset=cs((6, 7)), n_leaves=8, deadline=victim_deadline)
        )
        assert ticket.accepted
        for _ in range(6):
            svc.step()
        return svc.results[ticket.id]

    def test_served_exactly_at_deadline_tick_is_done(self):
        result = self._settle_fourth(victim_deadline=4)
        assert result.status is StreamStatus.DONE
        assert result.latency_ticks == 4  # the full budget, not a tick less

    def test_one_tick_past_deadline_is_expired(self):
        result = self._settle_fourth(victim_deadline=3)
        assert result.status is StreamStatus.EXPIRED
        assert result.attempts == 0  # expired in queue, never executed
        assert result.latency_ticks == 4

    def _lone_columnar(self, deadline: int):
        svc = StreamingSchedulerService(
            config=SchedulerConfig(engine="columnar"),
            batch_window=3,
            max_inflight=4,
            default_quota=roomy_quota(),
        )
        ticket = svc.submit(
            StreamRequest(cset=cs((0, 1)), n_leaves=8, deadline=deadline)
        )
        assert ticket.accepted
        for _ in range(8):
            svc.step()
        return svc.results[ticket.id]

    def test_holdback_releases_when_slack_reaches_the_window(self):
        # slack == batch_window at tick 1 → not held (holding any longer
        # could push the request into its deadline).
        result = self._lone_columnar(deadline=4)
        assert result.status is StreamStatus.DONE
        assert result.latency_ticks == 1

    def test_holdback_waits_while_slack_exceeds_the_window(self):
        # slack 4 > 3 at tick 1 → hold once; slack 3 at tick 2 → release.
        result = self._lone_columnar(deadline=5)
        assert result.status is StreamStatus.DONE
        assert result.latency_ticks == 2

    def test_holdback_is_capped_at_batch_window(self):
        result = self._lone_columnar(deadline=50)
        assert result.status is StreamStatus.DONE
        assert result.latency_ticks == 3  # == batch_window, never more

    def test_holdback_never_expires_a_lone_leader(self):
        for deadline in range(4, 12):
            result = self._lone_columnar(deadline=deadline)
            assert result.status is StreamStatus.DONE
            assert result.latency_ticks <= min(3, deadline)
