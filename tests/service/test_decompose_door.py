"""The decompose="auto" door: arbitrary sets through both services.

Covers the admission change (admit instead of reject), the pairing-exact
general cache signature, per-request batch accounting, and the extended
parity contract (service payloads bit-identical to the direct scheduler
for general results too).
"""

import numpy as np
import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import random_arbitrary
from repro.core.config import SchedulerConfig
from repro.core.plan import GeneralSchedule
from repro.exceptions import OrientationError
from repro.obs import Instrumentation, MetricsRegistry
from repro.service import (
    Priority,
    RequestStatus,
    SchedulerService,
    StreamRequest,
    StreamStatus,
    StreamingSchedulerService,
    arbitrary_workloads,
)
from repro.service.cache import canonical_signature


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


AUTO = SchedulerConfig(decompose="auto")


class TestGeneralSignature:
    def test_strict_config_still_rejects_non_right_oriented(self):
        with pytest.raises(OrientationError, match="decompose='auto'"):
            canonical_signature(cs((3, 0)), 4, config=SchedulerConfig())

    def test_auto_config_admits_and_marks_general(self):
        key = canonical_signature(cs((3, 0), (1, 2)), 4, config=AUTO)
        assert key.general
        assert key.placed.startswith("G:")

    def test_well_nested_keys_identical_under_both_modes(self):
        wn = cs((0, 3), (1, 2))
        strict = canonical_signature(wn, 8, config=SchedulerConfig())
        auto = canonical_signature(wn, 8, config=AUTO)
        assert not auto.general
        assert (strict.dyck, strict.placed) == (auto.dyck, auto.placed)

    def test_crossing_and_nested_sets_get_distinct_keys(self):
        # both render "(())" as a parenthesis profile; the general
        # signature must keep them apart or the cache would serve one
        # set's schedule for the other.
        crossing = canonical_signature(cs((0, 2), (1, 3)), 4, config=AUTO)
        nested = canonical_signature(cs((0, 3), (1, 2)), 4, config=AUTO)
        assert crossing.general
        assert crossing.placed != nested.placed

    def test_relabelling_shares_dyck_but_not_placed(self):
        a = canonical_signature(cs((0, 2), (1, 3)), 16, config=AUTO)
        b = canonical_signature(cs((4, 6), (5, 7)), 16, config=AUTO)
        assert a.dyck == b.dyck
        assert a.placed != b.placed


class TestBatchServiceDoor:
    def test_strict_service_rejects_arbitrary(self):
        service = SchedulerService()
        ticket = service.submit(cs((3, 0), (1, 2)), n_leaves=4)
        assert not ticket.accepted
        assert "decompose" in (ticket.reason or "")

    def test_auto_service_admits_and_delivers(self):
        cset = random_arbitrary(8, 32, np.random.default_rng(2))
        service = SchedulerService(config=AUTO, parity_check=True)
        ticket = service.submit(cset, n_leaves=32)
        assert ticket.accepted
        report = service.drain()
        result = report.results[ticket.id]
        assert result.status is RequestStatus.DONE
        assert isinstance(result.result, GeneralSchedule)
        assert result.batches > 1
        assert sorted(result.schedule.performed()) == sorted(cset.comms)

    def test_well_nested_requests_report_one_batch(self):
        service = SchedulerService(config=AUTO, parity_check=True)
        ticket = service.submit(cs((0, 3), (1, 2)), n_leaves=8)
        report = service.drain()
        assert report.results[ticket.id].batches == 1

    def test_duplicate_arbitrary_requests_hit_the_cache(self):
        cset = random_arbitrary(6, 32, np.random.default_rng(4))
        service = SchedulerService(config=AUTO, parity_check=True)
        report = service(
            [cset, cset, cs((0, 3), (1, 2))], n_leaves=32
        )
        assert report.n_done == 3
        assert report.n_cached == 1

    def test_batch_metrics_account_decomposition(self):
        obs = Instrumentation(MetricsRegistry(), run="svc")
        cset = random_arbitrary(6, 32, np.random.default_rng(4))
        service = SchedulerService(config=AUTO, obs=obs)
        report = service([cset, cs((0, 3), (1, 2))], n_leaves=32)
        assert report.n_done == 2
        counters = obs.metrics.snapshot()["counters"]
        requests = next(
            v for k, v in counters.items() if "decompose.requests" in k
        )
        batches = next(
            v for k, v in counters.items() if "decompose.batches" in k
        )
        assert requests == 1  # only the arbitrary request decomposed
        assert batches > 1

    def test_mixed_batch_all_settle_with_parity(self):
        batch = arbitrary_workloads(32, 6, seed=1)
        service = SchedulerService(config=AUTO, parity_check=True)
        report = service(batch, n_leaves=32)
        assert report.n_done == len(batch)
        for result in report.results.values():
            cset = batch[result.ticket_id]
            assert sorted(result.schedule.performed()) == sorted(cset.comms)


class TestStreamingDoor:
    def test_stream_admits_and_delivers_arbitrary(self):
        cset = random_arbitrary(8, 32, np.random.default_rng(6))
        service = StreamingSchedulerService(config=AUTO, parity_check=True)
        report = service.run(
            [
                StreamRequest(cset=cset, n_leaves=32),
                StreamRequest(cset=cs((0, 3), (1, 2)), n_leaves=32),
            ]
        )
        assert report.n_done == 2
        by_batches = sorted(
            r.batches
            for r in report.results.values()
            if r.status is StreamStatus.DONE
        )
        assert by_batches[0] == 1 and by_batches[-1] > 1

    def test_strict_stream_rejects_arbitrary(self):
        service = StreamingSchedulerService()
        ticket = service.submit(
            StreamRequest(cset=cs((3, 0)), n_leaves=4, priority=Priority.HIGH)
        )
        assert not ticket.accepted
        report = service.report()
        assert report.results[ticket.id].status is StreamStatus.REJECTED

    def test_stream_metrics_account_decomposition(self):
        obs = Instrumentation(MetricsRegistry(), run="stream")
        cset = random_arbitrary(6, 32, np.random.default_rng(8))
        service = StreamingSchedulerService(config=AUTO, obs=obs)
        service.run([StreamRequest(cset=cset, n_leaves=32)])
        counters = obs.metrics.snapshot()["counters"]
        assert any("decompose.requests" in k for k in counters)


class TestWorkloadHelper:
    def test_arbitrary_workloads_deterministic(self):
        assert arbitrary_workloads(32, 4, seed=3) == arbitrary_workloads(
            32, 4, seed=3
        )

    def test_arbitrary_workloads_fit_the_tree(self):
        for cset in arbitrary_workloads(64, 8, seed=0):
            assert cset.max_pe < 64
            assert len(cset) == 16
