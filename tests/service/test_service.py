"""SchedulerService: parity, caching, admission, deadlines, retry."""

from __future__ import annotations

import pytest

import repro.service.service as service_mod
from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.exceptions import SchedulingError
from repro.io import schedule_to_dict
from repro.obs import Instrumentation, MetricsRegistry
from repro.service import (
    RequestStatus,
    SchedulerService,
    ServiceParityError,
    mixed_workloads,
)


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


@pytest.fixture
def batch():
    return mixed_workloads(32, 10, seed=3)


class TestParity:
    def test_service_results_bit_identical_to_direct(self, batch):
        with SchedulerService(workers=1) as svc:
            report = svc(batch, n_leaves=32)
        direct = PADRScheduler()
        expected = [schedule_to_dict(direct.schedule(c, n_leaves=32)) for c in batch]
        got = [report.results[t].payload for t in sorted(report.schedules())]
        assert got == expected

    def test_cache_hits_also_bit_identical(self, batch):
        with SchedulerService(workers=1, parity_check=True) as svc:
            svc(batch, n_leaves=32)
            report = svc(batch, n_leaves=32)  # all hits, parity asserted live
        assert report.n_done == len(batch)
        assert report.n_cached == len(batch)

    def test_parity_violation_raises(self, batch, monkeypatch):
        svc = SchedulerService(workers=1, parity_check=True)
        real = service_mod.schedule_request

        def corrupting(request):
            ticket_id, status, payload = real(request)
            if status == "ok":
                payload = dict(payload, n_leaves=payload["n_leaves"] * 2)
            return (ticket_id, status, payload)

        monkeypatch.setattr(service_mod, "schedule_request", corrupting)
        svc.submit(batch[0], n_leaves=32)
        with pytest.raises(ServiceParityError):
            svc.drain()


class TestCaching:
    def test_resubmission_hits(self, batch):
        with SchedulerService(workers=1) as svc:
            svc(batch, n_leaves=32)
            report = svc(batch, n_leaves=32)
        assert report.hit_rate == 1.0

    def test_intra_batch_duplicates_computed_once(self, monkeypatch):
        workload = cs((0, 3), (1, 2))
        real = service_mod.schedule_request
        calls = []

        def counting(request):
            calls.append(request[0])
            return real(request)

        monkeypatch.setattr(service_mod, "schedule_request", counting)
        with SchedulerService(workers=1) as svc:
            report = svc([workload, workload, workload], n_leaves=8)
        assert report.n_done == 3
        assert report.n_cached == 2  # one leader, two followers
        assert len(calls) == 1  # the leader is the only execution

    def test_config_isolation(self):
        """Schedules computed under one config never serve another."""
        workload = cs((0, 3), (1, 2))
        svc = SchedulerService(workers=1)
        svc([workload], n_leaves=8)
        other = SchedulerService(
            workers=1, config=SchedulerConfig(fast_path=False)
        )
        # fresh service, fresh cache — but also fresh *keys*: same workload
        # under a different config signature cannot collide
        from repro.service.cache import canonical_signature

        k1 = canonical_signature(workload, 8, config=svc.config)
        k2 = canonical_signature(workload, 8, config=other.config)
        assert k1.cache_key != k2.cache_key


class TestAdmission:
    def test_queue_bound_rejects_gracefully(self, batch):
        svc = SchedulerService(workers=1, max_queue=3)
        tickets = svc.submit_many(batch[:6], n_leaves=32)
        assert [t.accepted for t in tickets] == [True] * 3 + [False] * 3
        report = svc.drain()
        assert report.n_done == 3
        assert report.n_rejected == 3
        # every ticket settles exactly once
        assert {t.id for t in tickets} == set(report.results)

    def test_invalid_workload_rejected_at_the_door(self):
        svc = SchedulerService(workers=1)
        ticket = svc.submit(cs((5, 2)))  # left-oriented
        assert not ticket.accepted
        assert "right-oriented" in ticket.reason
        report = svc.drain()
        assert report.results[ticket.id].status is RequestStatus.REJECTED

    def test_constructor_validation(self):
        with pytest.raises(SchedulingError):
            SchedulerService(max_queue=0)
        with pytest.raises(SchedulingError):
            SchedulerService(default_deadline=0)


class TestRetryAndDeadlines:
    def _flaky(self, monkeypatch, fail_times: int):
        """Make the worker fail transiently ``fail_times`` times per ticket."""
        real = service_mod.schedule_request
        failures: dict[int, int] = {}

        def flaky(request):
            ticket_id = request[0]
            failures.setdefault(ticket_id, 0)
            if failures[ticket_id] < fail_times:
                failures[ticket_id] += 1
                return (ticket_id, "transient", "injected fault")
            return real(request)

        monkeypatch.setattr(service_mod, "schedule_request", flaky)

    def test_transient_failures_retry_with_backoff(self, monkeypatch):
        self._flaky(monkeypatch, fail_times=2)
        svc = SchedulerService(workers=1, max_retries=3)
        svc.submit(cs((0, 3), (1, 2)), n_leaves=8)
        report = svc.drain()
        result = next(iter(report.results.values()))
        assert result.status is RequestStatus.DONE
        assert result.attempts == 3
        # backoff 2^0 then 2^1 idle ticks: settles at tick 1+1+(1)+1+(2)... >= 4
        assert report.ticks >= 4

    def test_retry_budget_exhausts_to_failed(self, monkeypatch):
        self._flaky(monkeypatch, fail_times=99)
        svc = SchedulerService(workers=1, max_retries=2, default_deadline=100)
        svc.submit(cs((0, 3)), n_leaves=8)
        report = svc.drain()
        result = next(iter(report.results.values()))
        assert result.status is RequestStatus.FAILED
        assert result.attempts == 3  # initial + 2 retries
        assert "injected fault" in result.error

    def test_deadline_expires_backlogged_request(self, monkeypatch):
        self._flaky(monkeypatch, fail_times=99)
        svc = SchedulerService(workers=1, max_retries=10, default_deadline=3)
        svc.submit(cs((0, 3)), n_leaves=8)
        report = svc.drain()
        result = next(iter(report.results.values()))
        assert result.status is RequestStatus.EXPIRED
        assert result.wait_ticks > 3

    def test_permanent_failure_not_retried(self, monkeypatch):
        real = service_mod.schedule_request
        calls = []

        def permanent(request):
            calls.append(request[0])
            return (request[0], "permanent", "bad request")

        monkeypatch.setattr(service_mod, "schedule_request", permanent)
        svc = SchedulerService(workers=1, max_retries=5)
        svc.submit(cs((0, 3)), n_leaves=8)
        report = svc.drain()
        result = next(iter(report.results.values()))
        assert result.status is RequestStatus.FAILED
        assert len(calls) == 1


class TestPool:
    def test_pooled_results_match_inline(self, batch):
        with SchedulerService(workers=2) as pooled, SchedulerService(
            workers=1
        ) as inline:
            pr = pooled(batch, n_leaves=32)
            ir = inline(batch, n_leaves=32)
        pooled_payloads = [pr.results[t].payload for t in sorted(pr.schedules())]
        inline_payloads = [ir.results[t].payload for t in sorted(ir.schedules())]
        assert pooled_payloads == inline_payloads

    def test_close_is_idempotent(self):
        svc = SchedulerService(workers=2)
        svc([cs((0, 1))], n_leaves=8)
        svc.close()
        svc.close()


class TestObservability:
    def test_service_metrics_emitted(self, batch):
        obs = Instrumentation(MetricsRegistry(), run="svc")
        with SchedulerService(workers=1, obs=obs) as svc:
            svc(batch, n_leaves=32)
            svc(batch, n_leaves=32)
        snap = obs.metrics.snapshot()
        counters = snap["counters"]
        assert counters["service.submitted{run=svc}"] == 2 * len(batch)
        assert counters["service.done{run=svc}"] == 2 * len(batch)
        assert counters["service.cache.hits{run=svc}"] >= len(batch)
        assert "service.drain{run=svc}" in snap["spans"]

    def test_report_summary_mentions_everything(self, batch):
        with SchedulerService(workers=1) as svc:
            report = svc(batch, n_leaves=32)
        text = report.summary()
        for word in ("done", "cached", "rejected", "expired", "failed"):
            assert word in text


class TestScheduleRoundTrip:
    def test_results_rebuild_verifiable_schedules(self, batch):
        from repro.analysis.verifier import verify_schedule

        with SchedulerService(workers=1) as svc:
            report = svc(batch, n_leaves=32)
        for cset, tid in zip(batch, sorted(report.schedules())):
            schedule = report.results[tid].schedule
            assert verify_schedule(schedule, cset).ok


class TestSameShapeBatching:
    """Same-shape groups go through the columnar batch kernel — inline
    and pooled — without changing a single bit of any result."""

    @staticmethod
    def _same_shape_batch(n_leaves=32, copies=6):
        # shifted relabellings of one base set: same Dyck word, different
        # leaf geometry, hence one shape group but distinct cache keys.
        base = [(0, 3), (1, 2)]
        return [
            cs(*[(s + off, d + off) for s, d in base]) for off in range(copies)
        ]

    @pytest.mark.parametrize("workers", [1, 2], ids=["inline", "pooled"])
    def test_columnar_batches_same_shape_groups(self, workers):
        batch = self._same_shape_batch()
        cfg = SchedulerConfig(engine="columnar")
        obs = Instrumentation(MetricsRegistry(), run="shp")
        with SchedulerService(
            workers=workers, config=cfg, obs=obs, parity_check=True
        ) as svc:
            report = svc(batch, n_leaves=32)
        assert report.n_done == len(batch)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["service.shape_batches{run=shp}"] == 1
        assert counters["service.shape_batched{run=shp}"] == len(batch)
        direct = PADRScheduler(config=cfg)
        expected = [schedule_to_dict(direct.schedule(c, n_leaves=32)) for c in batch]
        got = [report.results[t].payload for t in sorted(report.schedules())]
        assert got == expected

    def test_scalar_engine_never_shape_batches(self, batch):
        obs = Instrumentation(MetricsRegistry(), run="shp")
        cfg = SchedulerConfig(engine="fast")
        with SchedulerService(workers=1, config=cfg, obs=obs) as svc:
            svc(batch, n_leaves=32)
        counters = obs.metrics.snapshot()["counters"]
        assert "service.shape_batches{run=shp}" not in counters

    def test_pooled_workers_honour_columnar_config(self):
        """The config the pool initialiser receives round-trips engine
        selection: worker results equal direct columnar scheduling."""
        batch = self._same_shape_batch(copies=4)
        cfg = SchedulerConfig(engine="columnar")
        with SchedulerService(workers=2, config=cfg, parity_check=True) as svc:
            report = svc(batch, n_leaves=32)
        direct = PADRScheduler(config=cfg)
        expected = [schedule_to_dict(direct.schedule(c, n_leaves=32)) for c in batch]
        got = [report.results[t].payload for t in sorted(report.schedules())]
        assert got == expected


def _crash_worker_once(request):
    """Worker-side crash injector for the pool-lifecycle regression.

    The first worker to run exits the interpreter abruptly (after dropping
    a marker so the retry wave behaves); ``Pool.map`` then sits on the lost
    task until the service's ``pool_timeout`` converts it into the
    transient path.
    """
    import os

    marker = os.environ["CST_PADR_CRASH_MARKER"]
    if os.path.exists(marker):
        from repro.service.worker import schedule_request

        return schedule_request(request)
    open(marker, "w").close()
    os._exit(1)


class TestPoolLifecycle:
    """Satellite regression: a drain that raises, or a pool call that blows
    up, must never leave live worker processes (or a poisoned pool) behind."""

    def test_failed_drain_leaves_no_live_workers(self, batch, monkeypatch):
        svc = SchedulerService(workers=2, parity_check=True)
        svc.submit_many(batch, n_leaves=32)
        procs = list(svc._ensure_pool()._pool)
        assert all(p.is_alive() for p in procs)

        def blown_parity(p, payload):
            raise service_mod.ServiceParityError("injected mismatch")

        monkeypatch.setattr(svc, "_assert_parity", blown_parity)
        with pytest.raises(service_mod.ServiceParityError):
            svc.drain()
        assert svc._pool is None
        for p in procs:
            p.join(timeout=10)
            assert not p.is_alive()

    def test_worker_crash_settles_transient_then_recovers(
        self, batch, monkeypatch, tmp_path
    ):
        marker = tmp_path / "crashed"
        monkeypatch.setenv("CST_PADR_CRASH_MARKER", str(marker))
        monkeypatch.setattr(service_mod, "schedule_request", _crash_worker_once)
        reg = MetricsRegistry()
        svc = SchedulerService(
            workers=2,
            pool_timeout=5.0,
            obs=Instrumentation(reg, run="t"),
        )
        with svc:
            report = svc(batch, n_leaves=32)
        assert marker.exists()
        assert report.n_done == len(batch)  # retried onto a fresh pool
        assert max(r.attempts for r in report.results.values()) > 1
        from repro.obs.registry import metric_key

        snap = reg.snapshot()
        assert snap["counters"][metric_key("service.pool.broken", {"run": "t"})] == 1
        assert svc._pool is None  # close() ran; nothing left behind

    def test_close_after_crash_is_clean(self, monkeypatch, tmp_path):
        # the abort path must leave the service reusable *and* closeable.
        marker = tmp_path / "crashed"
        marker.touch()  # behave normally from the start
        monkeypatch.setenv("CST_PADR_CRASH_MARKER", str(marker))
        svc = SchedulerService(workers=2, pool_timeout=5.0)
        svc.submit(cs((0, 1)), n_leaves=4)
        svc.drain()
        svc._abort_pool()
        assert svc._pool is None
        svc.close()  # idempotent after an abort
