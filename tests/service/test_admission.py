"""The admission state machine: transitions, hysteresis, the policy table."""

from __future__ import annotations

import pytest

from repro.exceptions import SchedulingError
from repro.obs import MetricsRegistry
from repro.obs.registry import metric_key
from repro.service.admission import (
    POLICY,
    AdmissionController,
    AdmissionDecision,
    AdmissionState,
    AdmissionThresholds,
    LoadSample,
    Priority,
)


def pressured(controller: AdmissionController, pressure: float) -> AdmissionState:
    """Feed one sample with exactly this queue pressure (no failure heat)."""
    return controller.observe(LoadSample(queue_fraction=pressure))


class TestThresholds:
    def test_defaults_are_ordered(self):
        t = AdmissionThresholds()
        assert 0 < t.yellow_enter < t.soft_red_enter < t.red_enter <= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"yellow_enter": 0.8, "soft_red_enter": 0.7},  # out of order
            {"red_enter": 1.5},  # above 1
            {"yellow_enter": 0.0},  # zero
            {"hysteresis": -0.1},
            {"cooldown": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(SchedulingError):
            AdmissionThresholds(**kwargs)

    def test_target_state_mapping(self):
        t = AdmissionThresholds()
        assert t.target_state(0.0) is AdmissionState.GREEN
        assert t.target_state(0.49) is AdmissionState.GREEN
        assert t.target_state(0.50) is AdmissionState.YELLOW
        assert t.target_state(0.75) is AdmissionState.SOFT_RED
        assert t.target_state(0.90) is AdmissionState.RED
        assert t.target_state(1.0) is AdmissionState.RED

    def test_exit_bound_is_enter_minus_hysteresis(self):
        t = AdmissionThresholds()
        assert t.exit_bound(AdmissionState.YELLOW) == pytest.approx(0.40)
        assert t.exit_bound(AdmissionState.SOFT_RED) == pytest.approx(0.65)
        assert t.exit_bound(AdmissionState.RED) == pytest.approx(0.80)


class TestLoadSample:
    def test_pressure_is_clamped(self):
        assert LoadSample(queue_fraction=2.0).pressure() == 1.0
        assert LoadSample(queue_fraction=-1.0).pressure() == 0.0

    def test_failure_heat_adds_pressure(self):
        calm = LoadSample(queue_fraction=0.3, capacity=10)
        hot = LoadSample(queue_fraction=0.3, expired=2, failed=1, retries=1,
                         capacity=10)
        assert hot.pressure() > calm.pressure()
        assert hot.pressure() == pytest.approx(0.3 + 0.5 * 0.4)


class TestTransitions:
    """Forced metric inputs drive the full cycle the ISSUE requires."""

    def test_full_cycle_green_to_red_and_back(self):
        c = AdmissionController(AdmissionThresholds(cooldown=2))
        assert c.state is AdmissionState.GREEN

        assert pressured(c, 0.55) is AdmissionState.YELLOW
        assert pressured(c, 0.80) is AdmissionState.SOFT_RED
        assert pressured(c, 0.95) is AdmissionState.RED

        # recovery: one step per earned cooldown (2 calm samples each)
        assert pressured(c, 0.1) is AdmissionState.RED
        assert pressured(c, 0.1) is AdmissionState.SOFT_RED
        assert pressured(c, 0.1) is AdmissionState.SOFT_RED
        assert pressured(c, 0.1) is AdmissionState.YELLOW
        assert pressured(c, 0.1) is AdmissionState.YELLOW
        assert pressured(c, 0.1) is AdmissionState.GREEN

        assert [s for _, s in c.state_trajectory()] == [
            "YELLOW", "SOFT_RED", "RED", "SOFT_RED", "YELLOW", "GREEN",
        ]
        for state in AdmissionState:
            assert c.reached(state)

    def test_escalation_jumps_straight_to_target(self):
        c = AdmissionController()
        assert pressured(c, 0.95) is AdmissionState.RED
        assert [s for _, s in c.state_trajectory()] == ["RED"]

    def test_deescalation_never_jumps(self):
        c = AdmissionController(AdmissionThresholds(cooldown=1))
        pressured(c, 0.95)
        assert pressured(c, 0.0) is AdmissionState.SOFT_RED  # one step only

    def test_hysteresis_band_holds_the_state(self):
        c = AdmissionController(AdmissionThresholds(cooldown=1))
        pressured(c, 0.55)
        # 0.45 is below yellow_enter but above the 0.40 exit bound
        for _ in range(5):
            assert pressured(c, 0.45) is AdmissionState.YELLOW

    def test_hot_sample_resets_the_calm_streak(self):
        c = AdmissionController(AdmissionThresholds(cooldown=3))
        pressured(c, 0.55)
        pressured(c, 0.1)
        pressured(c, 0.1)
        pressured(c, 0.45)  # back inside the band: streak resets
        pressured(c, 0.1)
        pressured(c, 0.1)
        assert c.state is AdmissionState.YELLOW  # still one calm sample short
        assert pressured(c, 0.1) is AdmissionState.GREEN


class TestPolicy:
    def test_table_covers_every_state_and_priority(self):
        assert set(POLICY) == set(AdmissionState)
        for row in POLICY.values():
            assert set(row) == set(Priority)

    def test_only_low_is_ever_shed(self):
        for state, row in POLICY.items():
            for priority, decision in row.items():
                if decision is AdmissionDecision.SHED:
                    assert priority is Priority.LOW, (
                        f"{state.name} sheds {priority.name}"
                    )

    def test_high_is_always_admitted(self):
        for row in POLICY.values():
            assert row[Priority.HIGH] is AdmissionDecision.ADMIT

    def test_decide_follows_the_table(self):
        c = AdmissionController()
        pressured(c, 0.95)  # RED
        assert c.decide(Priority.LOW) is AdmissionDecision.SHED
        assert c.decide(Priority.NORMAL) is AdmissionDecision.DEFER
        assert c.decide(Priority.HIGH) is AdmissionDecision.ADMIT

    def test_defers_reflects_the_current_state(self):
        c = AdmissionController()
        assert not c.defers(Priority.LOW)
        pressured(c, 0.55)  # YELLOW
        assert c.defers(Priority.LOW)
        assert not c.defers(Priority.NORMAL)


class TestMetrics:
    def test_gauges_and_transition_counters_emitted(self):
        reg = MetricsRegistry()
        c = AdmissionController(metrics=reg, run="t")
        c.observe(LoadSample(queue_fraction=0.95))
        c.decide(Priority.LOW)
        snap = reg.snapshot()
        assert snap["gauges"][metric_key("admission.state", {"run": "t"})] == 3
        assert (
            snap["counters"][
                metric_key(
                    "admission.transitions",
                    {"run": "t", "source": "GREEN", "target": "RED"},
                )
            ]
            == 1
        )
        assert (
            snap["counters"][
                metric_key("admission.shed", {"run": "t", "priority": "low"})
            ]
            == 1
        )


class TestClockAgreement:
    """Satellite regression: the controller's internal tick used to free-run
    (one bump per ``observe``), silently drifting from the service clock
    whenever anything sampled out of band.  The service now passes its own
    tick into ``observe`` and the controller enforces monotonic agreement."""

    def test_explicit_tick_adopts_the_service_clock(self):
        c = AdmissionController()
        c.observe(LoadSample(queue_fraction=0.0), tick=5)
        assert c.tick == 5
        c.observe(LoadSample(queue_fraction=0.0), tick=9)
        assert c.tick == 9

    def test_omitted_tick_still_self_advances(self):
        c = AdmissionController()
        c.observe(LoadSample(queue_fraction=0.0))
        c.observe(LoadSample(queue_fraction=0.0))
        assert c.tick == 2

    def test_stale_or_repeated_tick_rejected(self):
        c = AdmissionController()
        c.observe(LoadSample(queue_fraction=0.0), tick=3)
        for stale in (3, 2):
            with pytest.raises(SchedulingError, match="monotonically"):
                c.observe(LoadSample(queue_fraction=0.0), tick=stale)

    def test_streaming_keeps_admission_on_the_service_clock(self):
        # the drill attachment point (PR-7 on_tick hook) observes the two
        # clocks every tick: they must never drift apart.
        from repro.comms.communication import Communication, CommunicationSet
        from repro.service import StreamRequest, StreamingSchedulerService

        seen: list[tuple[int, int]] = []
        svc = StreamingSchedulerService(
            on_tick=lambda service, settled, now: seen.append(
                (now, service.admission.tick)
            )
        )
        for i in range(4):
            svc.submit(
                StreamRequest(
                    cset=CommunicationSet([Communication(0, 1)]),
                    n_leaves=4,
                    deadline=20,
                    release_time=i,
                )
            )
        svc.run()
        assert seen and all(now == tick for now, tick in seen)

    def test_out_of_band_observe_is_caught_next_tick(self):
        # the drifting-drill regression: a hook that samples the controller
        # itself used to desynchronise the clocks silently; now the very
        # next service tick trips the monotonic guard.
        from repro.comms.communication import Communication, CommunicationSet
        from repro.service import StreamRequest, StreamingSchedulerService

        def rogue_drill(service, settled, now):
            service.admission.observe(LoadSample(queue_fraction=0.0))

        svc = StreamingSchedulerService(on_tick=rogue_drill)
        for release in (0, 3):
            svc.submit(
                StreamRequest(
                    cset=CommunicationSet([Communication(0, 1)]),
                    n_leaves=4,
                    deadline=20,
                    release_time=release,
                )
            )
        with pytest.raises(SchedulingError, match="monotonically"):
            svc.run()
