"""TenantRegistry unit coverage: state defaults and DRR deficit hygiene.

Two regressions pinned here: ``TenantState.queue`` must be a real
per-instance default (it was ``None`` patched up in ``__post_init__``),
and a tenant whose queue empties must not bank deficit credit across
idle epochs — DRR fairness is about *current* backlog, so stale credit
would hand a returning tenant an unearned head start.
"""

from __future__ import annotations

from collections import deque

from repro.service.tenants import TenantQuota, TenantRegistry, TenantState


class TestTenantStateDefaults:
    def test_queue_defaults_to_an_empty_deque(self):
        q = TenantQuota()
        state = TenantState(name="a", quota=q, tokens=q.burst)
        assert isinstance(state.queue, deque)
        assert len(state.queue) == 0

    def test_queues_are_per_instance_not_shared(self):
        q = TenantQuota()
        a = TenantState(name="a", quota=q, tokens=q.burst)
        b = TenantState(name="b", quota=q, tokens=q.burst)
        a.queue.append("item")
        assert a.queue is not b.queue
        assert len(b.queue) == 0


class TestDeficitHygiene:
    def test_deficit_resets_when_queue_empties(self):
        reg = TenantRegistry()
        reg.register("a", TenantQuota(weight=5.0))
        reg.enqueue("a", "x")
        assert reg.fair_select(4) == ["x"]
        state = reg.get("a")
        assert not state.queue
        assert state.deficit == 0.0  # no credit hoarded while idle

    def test_idle_epoch_gives_no_head_start(self):
        # drain A fully, then race A against an equal-weight B: the
        # split must be even, not tilted by A's stale credit.
        reg = TenantRegistry()
        reg.register("a", TenantQuota(weight=1.0))
        reg.register("b", TenantQuota(weight=1.0))
        reg.enqueue("a", "warmup")
        assert reg.fair_select(8) == ["warmup"]
        for i in range(4):
            reg.enqueue("a", f"a{i}")
            reg.enqueue("b", f"b{i}")
        picked = reg.fair_select(4)
        assert sum(1 for p in picked if p.startswith("a")) == 2
        assert sum(1 for p in picked if p.startswith("b")) == 2

    def test_backlogged_deficit_stays_bounded(self):
        reg = TenantRegistry()
        reg.register("a", TenantQuota(weight=3.0))
        for i in range(10):
            reg.enqueue("a", i)
        budget = 2
        reg.fair_select(budget)
        state = reg.get("a")
        assert state.queue  # still backlogged
        assert state.deficit <= max(state.quota.weight, float(budget))

    def test_weighted_split_unaffected_by_reset(self):
        # the reset only fires on *empty* queues; a live 2:1 weight
        # split still drains 2:1.
        reg = TenantRegistry()
        reg.register("heavy", TenantQuota(weight=2.0))
        reg.register("light", TenantQuota(weight=1.0))
        for i in range(12):
            reg.enqueue("heavy", f"h{i}")
            reg.enqueue("light", f"l{i}")
        picked = reg.fair_select(9)
        assert sum(1 for p in picked if p.startswith("h")) == 6
        assert sum(1 for p in picked if p.startswith("l")) == 3
