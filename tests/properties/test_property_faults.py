"""Property: no single fault escapes both the verifier and reachability.

For ANY single switch fault and ANY right-oriented well-nested set, one of
two things must hold:

* the verifier flags the (non-strict) schedule — the fault produced
  observable damage; or
* :func:`repro.recovery.fault_reachable` proves the fault could not have
  been exercised by any circuit of the set — a clean verdict is honest.

Together these close the detection story: a fault that is reachable is
always caught, and a clean schedule under an injected fault is never a
silent miss, only a provably harmless one.  A strict-mode runtime error
counts as caught.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verifier import verify_schedule
from repro.core.csa import PADRScheduler
from repro.cst.faults import DeadSwitchFault, MisrouteFault, StuckSwitchFault, inject
from repro.cst.network import CSTNetwork
from repro.cst.topology import CSTTopology
from repro.exceptions import ReproError
from repro.recovery import FaultDetector, fault_reachable

from tests.conftest import wellnested_set_st

N = 64
TOPO = CSTTopology.of(N)
FAULTS = {
    "dead": DeadSwitchFault,
    "stuck": StuckSwitchFault,
    "misroute": MisrouteFault,
}


@given(
    cset=wellnested_set_st(max_pairs=6, n_leaves=N),
    switch_id=st.integers(min_value=1, max_value=N - 1),
    kind=st.sampled_from(sorted(FAULTS)),
)
@settings(max_examples=120, deadline=None)
def test_single_fault_flagged_or_provably_unreachable(cset, switch_id, kind):
    fault = FAULTS[kind]()
    net = CSTNetwork.of_size(N)
    inject(net, switch_id, fault)
    try:
        schedule = PADRScheduler(strict=False, check_postconditions=False).schedule(
            cset, network=net
        )
    except ReproError:
        return  # caught at run time: the fault did not go unnoticed
    report = verify_schedule(schedule, cset)
    if report.ok:
        # clean verdict: the fault must be provably unable to touch any
        # circuit of this set (e.g. off every path, or a misroute on a
        # pure pass-through-up hop).
        assert not fault_reachable(fault, switch_id, cset, TOPO)
    else:
        # flagged: the structured evidence must carry the failing comms
        # the recovery layer needs, and reachability must agree.
        assert fault_reachable(fault, switch_id, cset, TOPO)
        assert report.failed_comms or report.spurious


@given(
    cset=wellnested_set_st(max_pairs=5, n_leaves=N),
    switch_id=st.integers(min_value=1, max_value=N - 1),
)
@settings(max_examples=60, deadline=None)
def test_detector_localises_any_flagged_dead_fault(cset, switch_id):
    """Stronger end-to-end property for the dead model: whenever the
    verifier produces evidence, probe localisation names the true switch."""
    net = CSTNetwork.of_size(N)
    inject(net, switch_id, DeadSwitchFault())
    schedule = PADRScheduler(strict=False, check_postconditions=False).schedule(
        cset, network=net
    )
    report = verify_schedule(schedule, cset)
    if report.ok or not report.failed_comms:
        return
    result = FaultDetector().detect(net, report.failed_comms)
    assert result.fault_switches == frozenset({switch_id})
