"""Property-based tests of the tree geometry and path structure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cst.topology import CSTTopology
from repro.types import Direction, OutPort

SIZES = st.sampled_from([2, 4, 8, 16, 64, 256])


@st.composite
def tree_and_pair(draw):
    n = draw(SIZES)
    a = draw(st.integers(min_value=0, max_value=n - 1))
    b = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != a))
    return CSTTopology.of(n), a, b


@given(tree_and_pair())
@settings(max_examples=200, deadline=None)
def test_path_edges_alternate_up_then_down(args):
    topo, a, b = args
    edges = topo.path_edges(a, b)
    dirs = [e.direction for e in edges]
    # all UP edges precede all DOWN edges — circuits never turn back
    first_down = next(
        (i for i, d in enumerate(dirs) if d is Direction.DOWN), len(dirs)
    )
    assert all(d is Direction.UP for d in dirs[:first_down])
    assert all(d is Direction.DOWN for d in dirs[first_down:])


@given(tree_and_pair())
@settings(max_examples=200, deadline=None)
def test_path_connections_walkable(args):
    """Following the connections from the source leaf reaches the
    destination leaf — the static analogue of network tracing."""
    topo, a, b = args
    conns = topo.path_connections(a, b)
    node = topo.leaf_heap_id(a)
    current = node >> 1
    from repro.types import InPort

    in_port = InPort.R if node & 1 else InPort.L
    for _ in range(2 * topo.height + 1):
        conn = conns[current]
        assert conn.in_port is in_port
        if conn.out_port is OutPort.P:
            in_port = InPort.R if current & 1 else InPort.L
            current >>= 1
        else:
            child = (current << 1) | (1 if conn.out_port is OutPort.R else 0)
            if topo.is_leaf(child):
                assert topo.pe_index(child) == b
                return
            in_port = InPort.P
            current = child
    raise AssertionError("walk did not terminate")


@given(tree_and_pair())
@settings(max_examples=200, deadline=None)
def test_path_symmetric_under_reversal(args):
    """The reverse communication uses exactly the reversed edges."""
    topo, a, b = args
    fwd = set(topo.path_edges(a, b))
    bwd = set(topo.path_edges(b, a))
    assert bwd == {e.reverse for e in fwd}


@given(tree_and_pair())
@settings(max_examples=200, deadline=None)
def test_path_length_logarithmic(args):
    topo, a, b = args
    assert 1 <= topo.path_length(a, b) <= 2 * topo.height - 1


@given(tree_and_pair())
@settings(max_examples=200, deadline=None)
def test_lca_level_bounds_path(args):
    topo, a, b = args
    lca = topo.lca_of_pes(a, b)
    lvl = topo.level(lca)
    assert topo.path_length(a, b) == 2 * (topo.height - lvl) - 1


@given(st.sampled_from([2, 4, 8, 32]), st.data())
@settings(max_examples=100, deadline=None)
def test_subtree_partition(n, data):
    """At every level, subtree leaf ranges partition the leaves."""
    topo = CSTTopology.of(n)
    lvl = data.draw(st.integers(min_value=0, max_value=topo.height - 1))
    covered: list[int] = []
    for v in topo.switches_at_level(lvl):
        covered.extend(topo.subtree_leaf_range(v))
    assert sorted(covered) == list(range(n))
