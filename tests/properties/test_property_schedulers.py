"""Property-based tests over all baseline schedulers."""

import pytest
from hypothesis import given, settings

from repro.analysis.verifier import verify_schedule
from repro.baselines import (
    GreedyScheduler,
    RandomOrderScheduler,
    RoyIDScheduler,
    SequentialScheduler,
)
from repro.comms.width import width
from repro.cst.topology import CSTTopology

from tests.conftest import wellnested_set_st

TOPO = CSTTopology.of(64)

BASELINES = [
    RoyIDScheduler(),
    GreedyScheduler("outermost"),
    GreedyScheduler("innermost"),
    GreedyScheduler("lexical"),
    RandomOrderScheduler(seed=5),
    SequentialScheduler(),
]


@pytest.mark.parametrize("scheduler", BASELINES, ids=lambda s: s.name)
class TestBaselineProperties:
    @given(cset=wellnested_set_st(max_pairs=8))
    @settings(max_examples=60, deadline=None)
    def test_delivers_everything_exactly_once(self, scheduler, cset):
        s = scheduler.schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()

    @given(cset=wellnested_set_st(max_pairs=8))
    @settings(max_examples=60, deadline=None)
    def test_rounds_at_least_width(self, scheduler, cset):
        s = scheduler.schedule(cset, n_leaves=64)
        assert s.n_rounds >= width(cset, TOPO)


@given(cset=wellnested_set_st(max_pairs=8))
@settings(max_examples=60, deadline=None)
def test_roy_ids_equal_width_rounds(cset):
    """The reconstruction's round-optimality, as promised in its docstring."""
    s = RoyIDScheduler().schedule(cset, n_leaves=64)
    assert s.n_rounds == width(cset, TOPO)


@given(cset=wellnested_set_st(max_pairs=8))
@settings(max_examples=100, deadline=None)
def test_greedy_outermost_width_optimal(cset):
    """Outermost-first greedy matches the width bound.

    Notably this does NOT hold for innermost-first: peeling inner pairs
    first can leave a chain of mutually-conflicting outer communications
    that then serialise (hypothesis finds e.g. {(0,12),(1,2),(3,11),(4,5),
    (8,10),(13,14)}: width 2 but 3 innermost-first rounds).  Scheduling the
    outermost communication first — the CSA's O_c(u) rule — is therefore
    load-bearing for Theorem 5, not only for Theorem 8.
    """
    s = GreedyScheduler("outermost").schedule(cset, n_leaves=64)
    assert s.n_rounds == width(cset, TOPO)


def test_greedy_innermost_not_always_optimal():
    """Regression-pin the hypothesis counterexample described above."""
    from repro.comms.communication import Communication, CommunicationSet

    cset = CommunicationSet(
        Communication(*p)
        for p in [(0, 12), (1, 2), (3, 11), (4, 5), (8, 10), (13, 14)]
    )
    assert width(cset, TOPO) == 2
    s = GreedyScheduler("innermost").schedule(cset, n_leaves=64)
    assert s.n_rounds == 3


@given(cset=wellnested_set_st(max_pairs=8))
@settings(max_examples=40, deadline=None)
def test_csa_power_never_beaten(cset):
    """No baseline achieves fewer max-per-switch changes than the CSA."""
    from repro.core.csa import PADRScheduler

    csa = PADRScheduler().schedule(cset, n_leaves=64)
    for scheduler in BASELINES:
        other = scheduler.schedule(cset, n_leaves=64)
        assert csa.power.max_switch_changes <= other.power.max_switch_changes + 1
