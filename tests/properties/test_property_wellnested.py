"""Property-based tests of the well-nested communication model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.dyck import is_dyck_word
from repro.comms.generators import from_dyck_word
from repro.comms.wellnested import (
    is_well_nested,
    nesting_depths,
    nesting_forest,
    parenthesis_profile,
)
from repro.comms.width import edge_loads, width
from repro.cst.topology import CSTTopology

from tests.conftest import dyck_word_st, wellnested_set_st

TOPO = CSTTopology.of(64)


@given(wellnested_set_st())
@settings(max_examples=200, deadline=None)
def test_profile_roundtrips_through_from_dyck_word(cset):
    """parenthesis_profile and from_dyck_word are inverse (up to placement)."""
    profile = parenthesis_profile(cset, 64)
    word = profile.replace(".", "")
    positions = [i for i, ch in enumerate(profile) if ch != "."]
    assert is_dyck_word(word)
    assert from_dyck_word(word, positions) == cset


@given(wellnested_set_st())
@settings(max_examples=200, deadline=None)
def test_no_two_communications_cross(cset):
    """The defining geometric property: intervals nest or are disjoint."""
    comms = list(cset)
    for i, a in enumerate(comms):
        for b in comms[i + 1 :]:
            crossing = (
                a.leftmost < b.leftmost <= a.rightmost < b.rightmost
                or b.leftmost < a.leftmost <= b.rightmost < a.rightmost
            )
            assert not crossing


@given(wellnested_set_st())
@settings(max_examples=200, deadline=None)
def test_removing_any_communication_preserves_well_nestedness(cset):
    if len(cset) == 0:
        return
    for skip in range(len(cset)):
        sub = CommunicationSet(c for i, c in enumerate(cset) if i != skip)
        assert is_well_nested(sub)


@given(wellnested_set_st())
@settings(max_examples=200, deadline=None)
def test_forest_depths_consistent(cset):
    forest = nesting_forest(cset)
    depths = nesting_depths(cset)
    for c, parent in forest.items():
        if parent is None:
            assert depths[c] == 0
        else:
            assert depths[c] == depths[parent] + 1


@given(wellnested_set_st())
@settings(max_examples=200, deadline=None)
def test_width_at_most_max_depth_plus_one(cset):
    """Same-edge users form nesting chains, so width <= deepest chain."""
    if len(cset) == 0:
        return
    depths = nesting_depths(cset)
    assert width(cset, TOPO) <= max(depths.values()) + 1


@given(wellnested_set_st())
@settings(max_examples=200, deadline=None)
def test_edge_loads_sum_equals_total_path_edges(cset):
    loads = edge_loads(cset, TOPO)
    total_edges = sum(len(TOPO.path_edges(c.src, c.dst)) for c in cset)
    assert sum(loads.values()) == total_edges


@given(dyck_word_st(max_pairs=12))
@settings(max_examples=200, deadline=None)
def test_mirroring_preserves_nesting_structure(word):
    cset = from_dyck_word(word)
    n = 64
    mirrored = cset.mirrored(n)
    # mirrored set is left-oriented; re-mirroring restores the original
    assert mirrored.is_left_oriented
    assert mirrored.mirrored(n) == cset
    # depths are preserved under reflection
    back = mirrored.mirrored(n)
    assert nesting_depths(back) == nesting_depths(cset)
