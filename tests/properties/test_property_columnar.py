"""Columnar-kernel properties: batch parity and shape-key invariance.

The struct-of-arrays kernel carries two contracts beyond the pairwise
engine equality exercised in ``test_property_differential``:

* ``schedule_batch`` over any mix of sets is bit-identical to scheduling
  each set solo — batching is a pure throughput optimisation;
* the service layer's same-shape grouping key ``(n_leaves, dyck,
  config)`` is invariant under relabelling, i.e. it is exactly the
  coarsening of PR-4's canonical cache key that forgets leaf geometry
  but keeps structure.  Two placements of the same Dyck word always land
  in the same batch group.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comms.generators import from_dyck_word
from repro.core.columnar import ColumnarRun, schedule_batch
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.cst.engine import ColumnarWaveEngine
from repro.service.cache import canonical_signature

from tests.conftest import dyck_word_st, wellnested_set_st

N = 64


def _solo(cset, config=None):
    cfg = config or SchedulerConfig(validate_input=False, engine="columnar")
    return PADRScheduler(config=cfg).schedule(cset, n_leaves=N)


def _assert_schedules_equal(a, b):
    assert [r.performed for r in a.rounds] == [r.performed for r in b.rounds]
    assert [r.writers for r in a.rounds] == [r.writers for r in b.rounds]
    assert [r.staged for r in a.rounds] == [r.staged for r in b.rounds]
    assert a.power.total_units == b.power.total_units
    assert a.power.per_switch_units == b.power.per_switch_units
    assert a.power.per_switch_changes == b.power.per_switch_changes
    assert a.control_messages == b.control_messages
    assert a.control_words == b.control_words
    assert a.physical_messages == b.physical_messages


@given(csets=st.lists(wellnested_set_st(max_pairs=6), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_batch_matches_solo_schedules(csets):
    """One kernel invocation over B sets == B independent runs, bit for bit.

    The sets are *not* required to share a shape — grouping only improves
    lockstep, never correctness.
    """
    cfg = SchedulerConfig(validate_input=False, engine="columnar")
    batched = schedule_batch(csets, n_leaves=N, config=cfg)
    assert len(batched) == len(csets)
    for cset, got in zip(csets, batched):
        _assert_schedules_equal(got, _solo(cset, cfg))


@given(
    word=dyck_word_st(max_pairs=8),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_shape_key_is_relabelling_invariant(word, data):
    """Two placements of one Dyck word share the batch-group shape key.

    The service groups on ``(n_leaves, dyck, config)`` — the canonical
    signature with the leaf geometry (``placed``) forgotten.  Any
    relabelling that preserves structure must therefore preserve the
    group, and sets that agree on the full cache key trivially agree on
    the shape key (the shape key is a coarsening, never a refinement).
    """
    k = len(word)
    positions_st = st.sets(
        st.integers(min_value=0, max_value=N - 1), min_size=k, max_size=k
    )
    a = from_dyck_word(word, sorted(data.draw(positions_st)))
    b = from_dyck_word(word, sorted(data.draw(positions_st)))
    cfg = SchedulerConfig(engine="columnar")
    sig_a = canonical_signature(a, N, config=cfg)
    sig_b = canonical_signature(b, N, config=cfg)
    shape_a = (sig_a.n_leaves, sig_a.dyck, sig_a.config)
    shape_b = (sig_b.n_leaves, sig_b.dyck, sig_b.config)
    assert sig_a.dyck == word == sig_b.dyck
    assert shape_a == shape_b
    # coarsening: identical cache keys imply identical shape keys.
    if sig_a.cache_key == sig_b.cache_key:
        assert shape_a == shape_b


@given(cset=wellnested_set_st(max_pairs=8))
@settings(max_examples=40, deadline=None)
def test_scalar_and_vector_paths_identical(cset):
    """The per-level scalar/vector hybrid is invisible.

    Forcing every level through the scalar path (cutoff = inf) or every
    level through the vector path (cutoff = 0) yields the same schedule
    as the default hybrid.
    """
    saved = ColumnarRun.SCALAR_CUTOFF
    try:
        results = []
        for cutoff in (0, 10**9, saved):
            ColumnarRun.SCALAR_CUTOFF = cutoff
            results.append(_solo(cset))
    finally:
        ColumnarRun.SCALAR_CUTOFF = saved
    _assert_schedules_equal(results[0], results[1])
    _assert_schedules_equal(results[0], results[2])


@given(cset=wellnested_set_st(max_pairs=6))
@settings(max_examples=30, deadline=None)
def test_engine_factory_and_config_dispatch_agree(cset):
    """Selecting columnar by factory or by config string is the same run."""
    by_config = _solo(cset)
    by_factory = PADRScheduler(
        validate_input=False, engine_factory=ColumnarWaveEngine
    ).schedule(cset, n_leaves=N)
    _assert_schedules_equal(by_config, by_factory)
