"""Property-based tests of the CSA over the space of well-nested sets.

These are the strongest correctness evidence in the suite: hypothesis
explores arbitrary well-nested workloads (including shrunk minimal
counterexamples on failure) and every invariant of Theorems 4, 5 and 8 must
hold on all of them.
"""

from hypothesis import given, settings

from repro.analysis.optimality import check_round_optimality
from repro.analysis.verifier import verify_schedule
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.topology import CSTTopology

from tests.conftest import wellnested_set_st

TOPO = CSTTopology.of(64)


@given(wellnested_set_st())
@settings(max_examples=150, deadline=None)
def test_theorem4_every_pair_delivered_exactly_once(cset):
    s = PADRScheduler().schedule(cset, n_leaves=64)
    verify_schedule(s, cset).raise_if_failed()


@given(wellnested_set_st())
@settings(max_examples=150, deadline=None)
def test_theorem5_rounds_equal_width(cset):
    s = PADRScheduler().schedule(cset, n_leaves=64)
    check_round_optimality(s, cset, require_optimal=True)


@given(wellnested_set_st())
@settings(max_examples=150, deadline=None)
def test_theorem8_constant_switch_changes(cset):
    s = PADRScheduler().schedule(cset, n_leaves=64)
    # Lemmas 6–7: at most two alternations per word family per port; six
    # bounds every switch with slack for the three-port interleavings.
    assert s.power.max_switch_changes <= 6


@given(wellnested_set_st())
@settings(max_examples=100, deadline=None)
def test_each_round_nonempty_and_strictly_progresses(cset):
    s = PADRScheduler().schedule(cset, n_leaves=64)
    for r in s.rounds:
        assert len(r.performed) >= 1
    total = sum(len(r.performed) for r in s.rounds)
    assert total == len(cset)


@given(wellnested_set_st())
@settings(max_examples=100, deadline=None)
def test_outermost_rule_first_round_contains_all_depth_zero_roots(cset):
    """The selection rule: every nesting root whose circuit does not clash
    with another root's circuit is scheduled in round 0; in particular, on
    conflict-free fronts the whole depth-0 level fires at once."""
    from repro.comms.wellnested import nesting_depths
    from repro.analysis.compatibility import is_compatible_set

    if len(cset) == 0:
        return
    depths = nesting_depths(cset)
    roots = [c for c, d in depths.items() if d == 0]
    if not is_compatible_set(roots, TOPO):
        return  # roots themselves clash (possible: disjoint intervals never
        # clash, but roots plus piggybacked inner pairs can differ)
    s = PADRScheduler().schedule(cset, n_leaves=64)
    round0 = set(s.rounds[0].performed)
    for c in roots:
        assert c in round0


@given(wellnested_set_st())
@settings(max_examples=100, deadline=None)
def test_power_conservation(cset):
    """Total charged units equal the sum over switches; every charged
    switch actually lies on some communication's path."""
    s = PADRScheduler().schedule(cset, n_leaves=64)
    per_switch = s.power.per_switch_units
    assert sum(per_switch.values()) == s.power.total_units
    on_paths = set()
    for c in cset:
        on_paths.update(TOPO.path_connections(c.src, c.dst).keys())
    assert set(per_switch).issubset(on_paths)
