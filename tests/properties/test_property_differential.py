"""Differential properties: fast-path engine vs the reference oracle.

The tentpole optimisation (frontier pruning, flat buffers, vectorised
Phase 1, interned words) must be *observationally invisible*: on any
well-nested set the fast engine produces the same schedule, the same
logical control-traffic accounting and the same power bill as the naive
reference walk — only ``physical_messages`` may shrink.
"""

import pytest
from hypothesis import given, settings

from repro.core.csa import PADRScheduler
from repro.core.phase1 import run_phase1, run_phase1_vectorized
from repro.cst.engine import ColumnarWaveEngine, CSTEngine, ReferenceWaveEngine
from repro.cst.network import CSTNetwork
from repro.obs import Instrumentation, MetricsRegistry

from tests.conftest import wellnested_set_st

N = 64


def _schedule(cset, factory, obs=None):
    sched = PADRScheduler(validate_input=False, engine_factory=factory, obs=obs)
    return sched.schedule(cset, network=CSTNetwork.of_size(N))


@pytest.mark.parametrize("factory", [CSTEngine, ColumnarWaveEngine])
@given(cset=wellnested_set_st(max_pairs=8))
@settings(max_examples=80, deadline=None)
def test_fast_and_reference_schedules_identical(factory, cset):
    fast = _schedule(cset, factory)
    ref = _schedule(cset, ReferenceWaveEngine)
    assert [r.performed for r in fast.rounds] == [r.performed for r in ref.rounds]
    assert [r.writers for r in fast.rounds] == [r.writers for r in ref.rounds]
    assert [r.staged for r in fast.rounds] == [r.staged for r in ref.rounds]
    assert fast.control_messages == ref.control_messages
    assert fast.control_words == ref.control_words
    assert fast.power.total_units == ref.power.total_units
    assert fast.power.per_switch_units == ref.power.per_switch_units
    # the reference walks every link; the optimised engines never walk more.
    assert ref.physical_messages == ref.control_messages
    assert fast.physical_messages <= fast.control_messages


@pytest.mark.parametrize("factory", [CSTEngine, ColumnarWaveEngine])
@given(cset=wellnested_set_st(max_pairs=8))
@settings(max_examples=60, deadline=None)
def test_fast_and_reference_logical_metrics_identical(factory, cset):
    """Observability restates the invisibility property: every *logical*
    metric (paper-model counters — ``ctrl.*``, ``power.*``, ``config.*``,
    ``csa.*``) must be identical between engines.  Only the ``phys.``
    plane — what the simulator actually walked — may differ, which is
    exactly why those counters carry the prefix ``logical_counters()``
    excludes."""
    snaps = {}
    for key, factory in (("fast", CSTEngine), ("ref", ReferenceWaveEngine)):
        obs = Instrumentation(MetricsRegistry(), run="d")
        _schedule(cset, factory, obs=obs)
        snaps[key] = obs.metrics
    assert snaps["fast"].logical_counters() == snaps["ref"].logical_counters()
    fast_phys = snaps["fast"].snapshot()["counters"]
    ref_phys = snaps["ref"].snapshot()["counters"]
    # the reference engine never prunes, so its physical plane equals the
    # logical one; the fast path's is bounded above by it.
    assert ref_phys["phys.messages{run=d}"] == ref_phys["ctrl.messages{run=d}"]
    assert fast_phys["phys.messages{run=d}"] <= fast_phys["ctrl.messages{run=d}"]


@given(cset=wellnested_set_st(max_pairs=8))
@settings(max_examples=80, deadline=None)
def test_vectorized_phase1_matches_wave_phase1(cset):
    """The numpy reduction computes exactly the per-switch C_S counters."""

    def states_with(runner):
        network = CSTNetwork.of_size(N)
        network.assign_roles(cset.roles())
        return runner(CSTEngine(network))

    wave = states_with(run_phase1)
    vec = states_with(run_phase1_vectorized)
    assert set(wave) == set(vec)
    for v in wave:
        assert wave[v].as_tuple() == vec[v].as_tuple(), f"switch {v}"
