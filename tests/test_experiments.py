"""Unit tests for the experiments package (sweeps + registry)."""

import pytest

from repro.experiments import (
    REGISTRY,
    control_constants,
    evolving_stream,
    power_sweep_crossing,
    repeated_pattern_stream,
    rounds_vs_width_crossing,
    rounds_vs_width_random,
    run_experiment,
    teardown_matrix,
    total_energy_comparison,
    traffic_vs_width,
)


class TestTheorem5Sweeps:
    def test_crossing_all_optimal(self):
        rows = rounds_vs_width_crossing(widths=(1, 2, 4))
        assert [r["csa_rounds"] for r in rows] == [1, 2, 4]
        assert all(r["csa_rounds/width"] == 1.0 for r in rows)

    def test_random_all_optimal(self):
        rows = rounds_vs_width_random(pair_counts=(4, 8), n_leaves=64)
        assert all(r["csa_rounds"] == r["width"] for r in rows)


class TestTheorem8Sweeps:
    def test_crossing_shapes(self):
        rows = power_sweep_crossing(widths=(4, 16))
        assert all(r["csa_max_changes"] <= 2 for r in rows)
        assert [r["roy_rebuild_max_units"] for r in rows] == [4, 16]

    def test_total_energy_ratio_grows(self):
        rows = total_energy_comparison(widths=(8, 32))
        assert rows[0]["ratio"] < rows[1]["ratio"]


class TestEfficiencySweeps:
    def test_constants(self):
        rows = control_constants(tree_sizes=(8, 32))
        assert all(r["messages/(links*waves)"] == 1.0 for r in rows)
        assert all(r["stored_words_per_switch"] == 5 for r in rows)

    def test_traffic_width_independent(self):
        rows = traffic_vs_width(widths=(1, 8), n_leaves=64)
        assert rows[0]["messages_per_wave"] == rows[1]["messages_per_wave"]


class TestAblation:
    def test_matrix_ordering(self):
        rows = teardown_matrix(widths=(4, 16))
        for r in rows:
            assert r["paper_total"] <= r["eager_total"] <= r["rebuild_total"]
            assert r["rebuild_max_units"] == r["width"]


class TestStreams:
    def test_repeated_pattern(self):
        rows = repeated_pattern_stream(repetitions=3)
        persistent = next(r for r in rows if r["discipline"] == "persistent")
        fresh = next(r for r in rows if r["discipline"] == "fresh")
        assert persistent["total"] < fresh["total"]
        assert persistent["profile"][1:] == [0, 0]

    def test_evolving(self):
        rows = evolving_stream(steps=3, n_pairs=5, n_leaves=32)
        assert rows[0]["persistent_total"] <= rows[0]["fresh_total"]


class TestRegistry:
    def test_all_ids_registered(self):
        assert {
            "T5-crossing", "T5-random", "T8-crossing", "T8-random",
            "T8-total", "EFF-constants", "EFF-traffic", "ABL-teardown",
            "STREAM-repeat", "STREAM-evolve",
        } == set(REGISTRY)

    def test_run_by_id(self):
        rows = run_experiment("T5-crossing")
        assert rows and "csa_rounds" in rows[0]

    def test_unknown_id_lists_valid(self):
        with pytest.raises(KeyError, match="valid ids"):
            run_experiment("nope")

    def test_every_registered_experiment_returns_rows(self):
        # the heavier sweeps run with their default parameters; this is
        # the integration guarantee that the CLI's `experiment` command
        # cannot hit a broken entry.
        for eid in ("ABL-teardown", "EFF-traffic", "STREAM-evolve"):
            rows = REGISTRY[eid].run()
            assert isinstance(rows, list) and rows


class TestCLIIntegration:
    def test_experiment_list(self, capsys):
        from repro.cli import main

        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "T8-crossing" in out

    def test_experiment_run(self, capsys):
        from repro.cli import main

        assert main(["experiment", "ABL-teardown"]) == 0
        out = capsys.readouterr().out
        assert "rebuild_max_units" in out

    def test_experiment_unknown(self, capsys):
        from repro.cli import main

        assert main(["experiment", "bogus"]) == 2
        assert "valid ids" in capsys.readouterr().out

    def test_experiment_no_id_lists(self, capsys):
        from repro.cli import main

        assert main(["experiment"]) == 0
        assert "available experiments" in capsys.readouterr().out


class TestRegenerateScript:
    def test_script_writes_tables(self, tmp_path, monkeypatch, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "regen", Path("scripts/regenerate_experiments.py")
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        monkeypatch.setattr("sys.argv", ["regen", str(tmp_path)])
        assert mod.main() == 0
        written = {p.name for p in tmp_path.iterdir()}
        assert "INDEX.md" in written
        assert "T8-crossing.txt" in written
        assert len(written) == len(REGISTRY) + 1
