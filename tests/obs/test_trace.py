"""Trace exporter tests: schema golden file, JSON-lines round-trip,
after-the-fact schedule export, summaries."""

import io
import json
from pathlib import Path

from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    TraceExporter,
    export_schedule,
    read_jsonl,
)

GOLDEN = Path(__file__).parent / "golden" / "trace_width2.jsonl"

#: fields every event of each kind must carry — the documented schema
#: (docs/observability.md); adding a field is fine, removing one is a
#: breaking change this test is meant to catch.
REQUIRED_FIELDS = {
    "run_start": {"seq", "event", "run", "scheduler", "n_leaves", "n_comms", "wave_depth"},
    "phase1": {"seq", "event", "run", "live_switches", "logical_messages",
               "physical_messages", "cached"},
    "round": {"seq", "event", "run", "round", "writers", "performed",
              "staged_switches"},
    "run_end": {"seq", "event", "run", "rounds", "total_power_units",
                "max_switch_units", "max_switch_changes", "per_switch_changes",
                "per_switch_units", "logical_messages", "logical_words",
                "physical_messages"},
}


def _instrumented_trace(width: int = 2) -> TraceExporter:
    trace = TraceExporter()
    obs = Instrumentation(MetricsRegistry(), trace, run="csa")
    PADRScheduler(obs=obs).schedule(crossing_chain(width))
    return trace


class TestGoldenFile:
    def test_cli_trace_matches_golden(self, tmp_path):
        """The `cst-padr trace --jsonl` output is byte-stable (deterministic
        events only — no timestamps, no host-dependent values)."""
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--width", "2", "--jsonl", str(out)]) == 0
        assert out.read_text() == GOLDEN.read_text()

    def test_golden_events_satisfy_schema(self):
        events = read_jsonl(GOLDEN)
        assert len(events) > 0
        for i, e in enumerate(events):
            assert e["seq"] == i
            missing = REQUIRED_FIELDS[e["event"]] - set(e)
            assert not missing, f"event {i} ({e['event']}) missing {missing}"

    def test_golden_contains_both_runs(self):
        runs = {e["run"] for e in read_jsonl(GOLDEN)}
        assert runs == {"csa", "roy-rebuild"}


class TestExporter:
    def test_seq_and_event_injected(self):
        t = TraceExporter()
        t.emit("a", x=1)
        t.emit("b", y=2)
        assert t.events[0] == {"seq": 0, "event": "a", "x": 1}
        assert t.events[1]["seq"] == 1
        assert len(t) == 2

    def test_jsonl_roundtrip_via_stream_and_path(self, tmp_path):
        t = _instrumented_trace()
        buf = io.StringIO()
        n = t.to_jsonl(buf)
        assert n == len(t.events)
        assert read_jsonl(io.StringIO(buf.getvalue())) == t.events
        p = tmp_path / "t.jsonl"
        t.to_jsonl(p)
        assert read_jsonl(p) == t.events

    def test_lines_are_compact_sorted_json(self):
        t = TraceExporter()
        t.emit("x", b=1, a=2)
        (line,) = list(t.lines())
        assert line == '{"a":2,"b":1,"event":"x","seq":0}'

    def test_round_deltas_sum_to_run_totals(self):
        t = _instrumented_trace(width=3)
        events = t.events
        end = next(e for e in events if e["event"] == "run_end")
        phase1 = next(e for e in events if e["event"] == "phase1")
        rounds = [e for e in events if e["event"] == "round"]
        assert (
            phase1["logical_messages"] + sum(r["logical_messages"] for r in rounds)
            == end["logical_messages"]
        )
        assert sum(r["power_units"] for r in rounds) == end["total_power_units"]
        assert sum(r["config_changes"] for r in rounds) == sum(
            end["per_switch_changes"].values()
        )

    def test_pruning_fields_consistent(self):
        for e in _instrumented_trace(width=3).events:
            if e["event"] == "round":
                assert e["pruned_links"] == e["logical_messages"] - e["physical_messages"]
                assert e["pruned_links"] >= 0


class TestExportSchedule:
    def test_finished_schedule_roundtrip(self):
        cset = crossing_chain(3)
        schedule = PADRScheduler().schedule(cset)
        t = TraceExporter()
        export_schedule(t, schedule, run="after")
        kinds = [e["event"] for e in t.events]
        assert kinds == ["run_start"] + ["round"] * schedule.n_rounds + ["run_end"]
        end = t.events[-1]
        assert end["total_power_units"] == schedule.power.total_units
        assert end["per_switch_changes"] == {
            str(v): c for v, c in schedule.power.per_switch_changes.items()
        }


class TestSummary:
    def test_summary_folds_per_run(self):
        t = _instrumented_trace(width=2)
        s = t.summary()
        assert s["csa"]["rounds"] == 2
        assert s["csa"]["max_switch_changes"] == 2
        assert "per_switch_changes" not in s["csa"]
