"""Unit tests for the metrics registry: instrument semantics, key encoding,
disabled-mode no-op behaviour, snapshots."""

import json

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    metric_key,
    parse_key,
)


class TestKeyEncoding:
    def test_no_labels(self):
        assert metric_key("csa.rounds") == "csa.rounds"
        assert parse_key("csa.rounds") == ("csa.rounds", {})

    def test_labels_sorted(self):
        key = metric_key("config.changes", {"switch": 5, "run": "csa"})
        assert key == "config.changes{run=csa,switch=5}"

    def test_roundtrip(self):
        key = metric_key("power.units", {"run": "roy", "switch": 12})
        name, labels = parse_key(key)
        assert name == "power.units"
        assert labels == {"run": "roy", "switch": "12"}


class TestCounter:
    def test_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["counters"]["x"] == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", run="a") is reg.counter("x", run="a")
        assert reg.counter("x", run="a") is not reg.counter("x", run="b")

    def test_counters_matching(self):
        reg = MetricsRegistry()
        reg.inc("config.changes", 2, switch=1)
        reg.inc("config.changes", 7, switch=2)
        reg.inc("other", 1)
        found = dict(
            (labels["switch"], v)
            for labels, v in reg.counters_matching("config.changes")
        )
        assert found == {"1": 2, "2": 7}


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("pending")
        g.set(10)
        g.add(-3)
        assert reg.snapshot()["gauges"]["pending"] == 7


class TestHistogram:
    def test_aggregates(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (1, 2, 3, 100):
            h.observe(v)
        out = h.export()
        assert out["count"] == 4
        assert out["sum"] == 106
        assert out["min"] == 1
        assert out["max"] == 100
        # cumulative bucket counts, Prometheus-style
        assert out["buckets"] == {"le=1": 1, "le=2": 2, "le=4": 3, "le=+inf": 4}
        assert h.mean == pytest.approx(26.5)

    def test_registry_observe(self):
        reg = MetricsRegistry()
        reg.observe("round.writers", 3, run="csa")
        snap = reg.snapshot()["histograms"]["round.writers{run=csa}"]
        assert snap["count"] == 1 and snap["sum"] == 3


class TestHistogramExport:
    def test_empty_histogram_golden(self):
        # min/max are null before the first observation — not 0, which
        # would read as an observed value.
        h = Histogram("h", buckets=(1.0, 2.0))
        assert h.export() == {
            "count": 0,
            "sum": 0,
            "min": None,
            "max": None,
            "buckets": {"le=1": 0, "le=2": 0, "le=+inf": 0},
        }
        assert h.mean == 0.0

    def test_duplicate_bounds_are_deduped(self):
        # repeated bounds used to export colliding ``le=`` keys, silently
        # dropping a bucket's cumulative count on the dict overwrite.
        h = Histogram("h", buckets=(1.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0)
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        out = h.export()
        assert out["buckets"] == {"le=1": 1, "le=2": 2, "le=+inf": 3}
        assert out["count"] == 3

    def test_unsorted_bounds_are_sorted(self):
        h = Histogram("h", buckets=(4.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 4.0)
        h.observe(3.0)
        assert h.export()["buckets"] == {
            "le=1": 0,
            "le=2": 0,
            "le=4": 1,
            "le=+inf": 1,
        }

    def test_registry_histogram_dedupes_custom_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(8.0, 8.0, 16.0))
        h.observe(10)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["buckets"] == {"le=8": 0, "le=16": 1, "le=+inf": 1}
        json.dumps(snap)  # export stays JSON-clean


class TestSpan:
    def test_aggregates_across_entries(self):
        reg = MetricsRegistry()
        for _ in range(3):
            with reg.span("work"):
                pass
        out = reg.snapshot()["spans"]["work"]
        assert out["count"] == 3
        assert out["total_s"] >= 0
        assert out["min_s"] <= out["max_s"]


class TestDisabledMode:
    def test_snapshot_stays_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("x", 5)
        reg.set("g", 1)
        reg.observe("h", 2)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.inc("anything")
        assert NULL_REGISTRY.snapshot()["counters"] == {}

    def test_null_instruments_are_interned(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is reg.histogram("b") is reg.span("c")


class TestSnapshot:
    def test_json_serialisable_and_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "b"]

    def test_logical_counters_excludes_physical_plane(self):
        reg = MetricsRegistry()
        reg.inc("ctrl.messages", 10)
        reg.inc("phys.messages", 4)
        assert reg.logical_counters() == {"ctrl.messages": 10}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert reg.snapshot()["counters"] == {}
