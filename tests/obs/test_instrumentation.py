"""Instrumentation-layer tests: scheduler/engine/meter hooks, the Theorem-8
acceptance trace, stream metrics, and snapshot extraction helpers."""

import json

import pytest

from repro.baselines import RoyIDScheduler
from repro.cli import main
from repro.comms.generators import crossing_chain, random_well_nested
from repro.core.csa import PADRScheduler
from repro.cst.power import PowerPolicy
from repro.extensions.stream import StreamScheduler
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    TraceExporter,
    observe_schedule,
    per_switch_changes_from,
    per_switch_counters_from,
    read_jsonl,
)


class TestTheorem8Acceptance:
    """`cst-padr trace` on a width-8 well-nested workload must emit a
    JSON-lines trace whose per-switch counters show O(1) configuration
    changes per switch under the CSA and Θ(w) re-establishments under the
    Roy baseline's per-round-rebuild discipline."""

    WIDTH = 8

    @pytest.fixture(scope="class")
    def events(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "w8.jsonl"
        assert main(["trace", "--width", str(self.WIDTH), "--jsonl", str(out)]) == 0
        return read_jsonl(out)

    def _run_end(self, events, run):
        return next(
            e for e in events if e["event"] == "run_end" and e["run"] == run
        )

    def test_csa_changes_constant_per_switch(self, events):
        end = self._run_end(events, "csa")
        assert max(end["per_switch_changes"].values()) <= 3  # Theorem 8's O(1)
        assert end["rounds"] == self.WIDTH  # Theorem 5: exactly w rounds

    def test_roy_rebuild_is_theta_w(self, events):
        end = self._run_end(events, "roy-rebuild")
        # per-round rebuild re-establishes the root's crossing connection
        # every round: w units on the widest switch.
        assert max(end["per_switch_units"].values()) == self.WIDTH
        assert end["max_switch_units"] == self.WIDTH

    def test_gap_grows_with_width(self, tmp_path):
        maxima = {}
        for w in (4, 16):
            out = tmp_path / f"w{w}.jsonl"
            main(["trace", "--width", str(w), "--jsonl", str(out)])
            ev = read_jsonl(out)
            csa = self._run_end(ev, "csa")
            roy = self._run_end(ev, "roy-rebuild")
            maxima[w] = (
                max(csa["per_switch_changes"].values()),
                max(roy["per_switch_units"].values()),
            )
        assert maxima[4][0] == maxima[16][0]  # CSA flat
        assert maxima[16][1] == 4 * maxima[4][1]  # Roy scales with w


class TestSchedulerHooks:
    def test_observed_run_matches_unobserved(self):
        """Attaching observability must not change the schedule."""
        import numpy as np

        cset = random_well_nested(8, 64, np.random.default_rng(3))
        plain = PADRScheduler().schedule(cset)
        obs = Instrumentation(MetricsRegistry(), TraceExporter(), run="x")
        observed = PADRScheduler(obs=obs).schedule(cset)
        assert [r.performed for r in plain.rounds] == [
            r.performed for r in observed.rounds
        ]
        assert plain.power.per_switch_changes == observed.power.per_switch_changes
        assert plain.control_messages == observed.control_messages

    def test_live_counters_match_power_report(self):
        cset = crossing_chain(4)
        obs = Instrumentation(MetricsRegistry(), run="csa")
        schedule = PADRScheduler(obs=obs).schedule(cset)
        snap = obs.metrics.snapshot()
        assert per_switch_changes_from(snap, run="csa") == dict(
            schedule.power.per_switch_changes
        )
        assert per_switch_counters_from(snap, "power.units", run="csa") == dict(
            schedule.power.per_switch_units
        )
        assert snap["counters"]["ctrl.messages{run=csa}"] == schedule.control_messages
        assert snap["counters"]["phys.messages{run=csa}"] == schedule.physical_messages

    def test_spans_recorded(self):
        obs = Instrumentation(MetricsRegistry(), run="csa")
        PADRScheduler(obs=obs).schedule(crossing_chain(2))
        spans = obs.metrics.snapshot()["spans"]
        assert spans["csa.schedule{run=csa}"]["count"] == 1
        assert spans["csa.phase1{run=csa}"]["count"] == 1

    def test_meter_hooks_fire(self):
        from repro.cst.power import PowerMeter

        charged, changed = [], []
        meter = PowerMeter()
        meter.on_charge = lambda v, cost: charged.append((v, cost))
        meter.on_change = lambda v: changed.append(v)
        meter.charge(3, 2)
        meter.charge(3, 0)  # zero connections: no event
        meter.note_change(3)
        assert charged == [(3, 2)]
        assert changed == [3]


class TestStreamMetrics:
    def test_per_step_counters_and_phase1_reuse(self):
        cset = crossing_chain(3)
        obs = Instrumentation(MetricsRegistry(), run="stream")
        StreamScheduler(obs=obs).run([cset, cset, cset], cset.min_leaves())
        snap = obs.metrics.snapshot()
        assert snap["counters"]["stream.steps{run=stream}"] == 3
        # identical consecutive sets reuse Phase 1: one wave, two cache hits.
        assert snap["counters"]["csa.phase1.runs{run=stream}"] == 1
        assert snap["counters"]["csa.phase1.cache_hits{run=stream}"] == 2
        assert snap["histograms"]["stream.step_power_units{run=stream}"]["count"] == 3


class TestObserveSchedule:
    def test_baseline_schedule_ingestion(self):
        cset = crossing_chain(4)
        roy = RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild())
        reg = MetricsRegistry()
        observe_schedule(reg, roy, run="roy")
        snap = reg.snapshot()
        assert snap["gauges"]["power.units.total{run=roy}"] == roy.power.total_units
        assert per_switch_counters_from(snap, "power.units", run="roy") == dict(
            roy.power.per_switch_units
        )

    def test_extraction_accepts_counters_section(self):
        reg = MetricsRegistry()
        reg.inc("config.changes", 2, run="a", switch=7)
        snap = reg.snapshot()
        assert per_switch_changes_from(snap["counters"], run="a") == {7: 2}
        assert per_switch_changes_from(snap, run="b") == {}


class TestMetricsCLI:
    def test_metrics_text_output(self, capsys):
        assert main(["metrics", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "config.changes{run=csa,switch=" in out
        assert "spans" in out

    def test_metrics_json_output(self, capsys):
        assert main(["metrics", "--width", "4", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["csa.rounds{run=csa}"] == 4

    def test_metrics_random_workload(self, capsys):
        assert main(["metrics", "--pairs", "4", "--leaves", "32", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["csa.phase1.runs{run=csa}"] == 1

    def test_trace_jsonl_stdout(self, capsys):
        assert main(["trace", "--width", "2", "--jsonl", "-"]) == 0
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.out.splitlines()]
        assert events[0]["event"] == "run_start"
        assert "wrote" in captured.err  # report goes to stderr
