"""API-conformance suite: every exported scheduler, one calling convention.

Parametrised over every :class:`~repro.core.base.Scheduler` subclass the
top-level package exports.  Each must:

* share the base class's ``schedule`` signature exactly (the template
  method — no subclass may override or extend the public surface);
* produce a :class:`~repro.core.schedule.Schedule` satisfying the shared
  invariants on a workload it accepts;
* accept ``obs=`` and populate the metrics registry;
* honour ``network=`` when it claims to (``supports_network``) and reject
  it clearly when it does not;
* reject the removed positional-``n_leaves`` form with ``TypeError``
  (deprecated in the PR-4 release, removed now).
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro.comms.communication import Communication, CommunicationSet
from repro.core.base import Scheduler
from repro.core.schedule import Schedule
from repro.cst.network import CSTNetwork
from repro.exceptions import SchedulingError
from repro.obs import Instrumentation, MetricsRegistry

#: name → (factory, a workload that scheduler accepts).  Right-oriented
#: well-nested by default; orientation-specific schedulers get their own.
RIGHT = CommunicationSet(
    [Communication(0, 7), Communication(1, 2), Communication(3, 6)]
)
LEFT = CommunicationSet(
    [Communication(7, 0), Communication(2, 1), Communication(6, 3)]
)
MIXED = CommunicationSet(
    [Communication(0, 3), Communication(5, 4), Communication(6, 7)]
)

CASES = {
    "PADRScheduler": (repro.PADRScheduler, RIGHT),
    "LeftPADRScheduler": (repro.LeftPADRScheduler, LEFT),
    "SequentialScheduler": (repro.SequentialScheduler, RIGHT),
    "GreedyScheduler": (repro.GreedyScheduler, RIGHT),
    "RandomOrderScheduler": (repro.RandomOrderScheduler, RIGHT),
    "RoyIDScheduler": (repro.RoyIDScheduler, RIGHT),
    "MirroredScheduler": (repro.MirroredScheduler, LEFT),
    "OrientedDecompositionScheduler": (
        repro.OrientedDecompositionScheduler,
        MIXED,
    ),
    "GeneralSetScheduler": (repro.GeneralSetScheduler, MIXED),
    "InterleavedGeneralScheduler": (repro.InterleavedGeneralScheduler, MIXED),
}


def exported_scheduler_classes() -> list[type]:
    """Every Scheduler subclass reachable from ``repro.__all__``."""
    classes = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if (
            inspect.isclass(obj)
            and issubclass(obj, Scheduler)
            and obj is not Scheduler
        ):
            classes.append(obj)
    return classes


def test_case_table_is_exhaustive():
    """Every exported scheduler class has a conformance case."""
    exported = {cls.__name__ for cls in exported_scheduler_classes()}
    assert exported == set(CASES), (
        "conformance table out of sync with repro.__all__: "
        f"missing {exported - set(CASES)}, stale {set(CASES) - exported}"
    )


@pytest.fixture(params=sorted(CASES), ids=sorted(CASES))
def case(request):
    factory, workload = CASES[request.param]
    return factory(), workload


class TestSignature:
    def test_schedule_is_the_template_method(self, case):
        scheduler, _ = case
        # no subclass overrides the public entry point
        assert type(scheduler).schedule is Scheduler.schedule

    def test_subclass_implements_the_hook(self, case):
        scheduler, _ = case
        assert type(scheduler)._schedule is not Scheduler._schedule

    def test_signature_is_uniform(self, case):
        scheduler, _ = case
        sig = inspect.signature(type(scheduler).schedule)
        assert list(sig.parameters) == [
            "self", "cset", "n_leaves", "policy", "network", "obs", "decompose",
        ]

    def test_options_are_keyword_only(self, case):
        scheduler, _ = case
        sig = inspect.signature(type(scheduler).schedule)
        for name in ("n_leaves", "policy", "network", "obs", "decompose"):
            assert sig.parameters[name].kind is inspect.Parameter.KEYWORD_ONLY


class TestScheduleInvariants:
    def test_returns_schedule_performing_the_set(self, case):
        scheduler, workload = case
        schedule = scheduler.schedule(workload, n_leaves=8)
        assert isinstance(schedule, Schedule)
        performed = sorted(c for r in schedule.rounds for c in r.performed)
        assert performed == sorted(workload.comms)
        assert schedule.n_leaves == 8
        assert schedule.scheduler_name == scheduler.name
        assert schedule.power.rounds >= schedule.n_rounds

    def test_default_n_leaves_is_min_leaves(self, case):
        scheduler, workload = case
        schedule = scheduler.schedule(workload)
        assert schedule.n_leaves == workload.min_leaves()


class TestObs:
    def test_obs_accepted_and_populated(self, case):
        scheduler, workload = case
        obs = Instrumentation(MetricsRegistry(), run="conformance")
        schedule = scheduler.schedule(workload, n_leaves=8, obs=obs)
        assert isinstance(schedule, Schedule)
        snapshot = obs.metrics.snapshot()
        keys = list(snapshot["counters"]) + list(snapshot["gauges"])
        assert any(
            "power" in k or "config" in k or "csa" in k or "rounds" in k
            for k in keys
        ), f"no scheduling metrics emitted: {sorted(keys)}"


class TestNetwork:
    def test_network_honoured_or_rejected(self, case):
        scheduler, workload = case
        network = CSTNetwork.of_size(8)
        if type(scheduler).supports_network:
            schedule = scheduler.schedule(workload, network=network)
            assert schedule.n_leaves == 8
        else:
            with pytest.raises(SchedulingError, match="network"):
                scheduler.schedule(workload, network=network)

    def test_conflicting_n_leaves_rejected(self, case):
        scheduler, workload = case
        if not type(scheduler).supports_network:
            pytest.skip("scheduler rejects networks entirely")
        network = CSTNetwork.of_size(8)
        with pytest.raises(SchedulingError, match="conflicts"):
            scheduler.schedule(workload, n_leaves=16, network=network)


class TestPositionalRemoved:
    """The PR-4 positional-``n_leaves`` deprecation shim is gone: the
    options are keyword-only and the old call form fails loudly."""

    def test_positional_n_leaves_raises_type_error(self, case):
        scheduler, workload = case
        with pytest.raises(TypeError):
            scheduler.schedule(workload, 8)

    def test_keyword_form_unaffected(self, case):
        scheduler, workload = case
        assert scheduler.schedule(workload, n_leaves=8).n_leaves == 8
