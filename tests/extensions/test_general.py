"""Unit tests for arbitrary-set scheduling via well-nested layering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, random_well_nested
from repro.comms.wellnested import is_well_nested
from repro.extensions.general import (
    GeneralSetScheduler,
    InterleavedGeneralScheduler,
    wellnested_layers,
)
from repro.analysis.verifier import verify_schedule


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


@st.composite
def arbitrary_set_st(draw, n_leaves=32, max_pairs=8):
    """Any valid communication set: crossings and mixed orientation allowed."""
    k = draw(st.integers(min_value=0, max_value=max_pairs))
    pes = draw(
        st.sets(st.integers(0, n_leaves - 1), min_size=2 * k, max_size=2 * k)
    )
    pes = sorted(pes)
    perm = draw(st.permutations(pes))
    comms = []
    for i in range(k):
        a, b = perm[2 * i], perm[2 * i + 1]
        comms.append(Communication(a, b))
    return CommunicationSet(comms)


class TestWellnestedLayers:
    def test_well_nested_set_is_one_layer(self):
        cset = crossing_chain(4)
        layers = wellnested_layers(cset)
        assert len(layers) == 1
        assert layers[0] == cset

    def test_crossing_pair_splits(self):
        cset = cs((0, 2), (1, 3))
        layers = wellnested_layers(cset)
        assert len(layers) == 2

    def test_layers_partition_the_set(self):
        cset = cs((0, 4), (1, 5), (2, 6), (3, 7))  # fully crossing ladder
        layers = wellnested_layers(cset)
        flat = sorted(c for layer in layers for c in layer)
        assert flat == sorted(cset.comms)
        assert len(layers) == 4  # every pair crosses every other

    def test_each_right_layer_is_well_nested(self):
        cset = cs((0, 2), (1, 3), (4, 6), (5, 7))
        for layer in wellnested_layers(cset):
            assert is_well_nested(layer)

    def test_empty(self):
        assert wellnested_layers(CommunicationSet(())) == []


class TestGeneralSetScheduler:
    def test_crossing_pair(self):
        cset = cs((0, 2), (1, 3))
        sched = GeneralSetScheduler()
        s = sched.schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()
        assert sched.last_layering.total_layers == 2

    def test_mixed_orientation_with_crossings(self):
        cset = cs((0, 2), (1, 3), (7, 5), (6, 4))
        s = GeneralSetScheduler().schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()

    def test_well_nested_degenerates_to_csa(self):
        cset = crossing_chain(3)
        sched = GeneralSetScheduler()
        s = sched.schedule(cset)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 3
        assert sched.last_layering.total_layers == 1

    def test_empty_set(self):
        s = GeneralSetScheduler().schedule(CommunicationSet(()), n_leaves=8)
        assert s.n_rounds == 0

    @given(cset=arbitrary_set_st())
    @settings(max_examples=80, deadline=None)
    def test_any_valid_set_schedules_correctly(self, cset):
        s = GeneralSetScheduler().schedule(cset, n_leaves=32)
        verify_schedule(s, cset).raise_if_failed()


class TestInterleavedGeneralScheduler:
    def test_correctness_on_crossings(self):
        cset = cs((0, 4), (1, 5), (2, 6), (3, 7))
        s = InterleavedGeneralScheduler().schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()

    def test_never_more_rounds_than_sequential(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            right = random_well_nested(5, 32, rng)
            s_seq = GeneralSetScheduler().schedule(right, n_leaves=32)
            s_int = InterleavedGeneralScheduler().schedule(right, n_leaves=32)
            assert s_int.n_rounds <= s_seq.n_rounds

    def test_opposite_orientations_interleave(self):
        # a right chain and its left mirror use opposite edge directions:
        # the merged schedule should take max(w, w), not w + w.
        right = [Communication(0, 15), Communication(1, 14)]
        left = [Communication(13, 2), Communication(12, 3)]
        cset = CommunicationSet(right + left)
        seq = GeneralSetScheduler().schedule(cset, n_leaves=16)
        merged = InterleavedGeneralScheduler().schedule(cset, n_leaves=16)
        verify_schedule(merged, cset).raise_if_failed()
        assert merged.n_rounds < seq.n_rounds

    @given(cset=arbitrary_set_st())
    @settings(max_examples=80, deadline=None)
    def test_any_valid_set_schedules_correctly(self, cset):
        s = InterleavedGeneralScheduler().schedule(cset, n_leaves=32)
        verify_schedule(s, cset).raise_if_failed()
