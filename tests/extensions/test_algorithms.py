"""Unit tests for CST computational algorithms (tree reduction)."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.algorithms import (
    AlgorithmError,
    srga_row_reduce,
    tree_reduce,
)
from repro.extensions.srga import SRGA


class TestTreeReduce:
    def test_sum_small(self):
        result = tree_reduce([1, 2, 3, 4], operator.add)
        assert result.value == 10
        assert result.result_pe == 3
        assert result.steps == 2

    def test_max(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        result = tree_reduce(values, max)
        assert result.value == 9

    def test_string_concatenation_preserves_order(self):
        # non-commutative op: checks the left operand is the accumulator
        values = list("abcdefgh")
        result = tree_reduce(values, operator.add)
        assert result.value == "abcdefgh"

    def test_log_n_steps_one_round_each(self):
        result = tree_reduce(list(range(64)), operator.add)
        assert result.steps == 6
        assert result.total_rounds == 6  # every step is width 1

    def test_power_accounted(self):
        result = tree_reduce([1, 2, 3, 4], operator.add)
        assert result.total_power_units > 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(AlgorithmError):
            tree_reduce([1, 2, 3], operator.add)

    def test_rejects_single_value(self):
        with pytest.raises(AlgorithmError):
            tree_reduce([1], operator.add)

    @given(
        st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=2,
            max_size=64,
        ).filter(lambda v: (len(v) & (len(v) - 1)) == 0)
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_python_sum(self, values):
        assert tree_reduce(values, operator.add).value == sum(values)

    def test_large_reduction(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, size=256).tolist()
        result = tree_reduce(values, operator.add)
        assert result.value == sum(values)
        assert result.steps == 8


class TestSRGARowReduce:
    def test_row_reduce(self):
        grid = SRGA(4, 8)
        result = srga_row_reduce(grid, 2, [1] * 8, operator.add)
        assert result.value == 8

    def test_rejects_wrong_value_count(self):
        with pytest.raises(AlgorithmError):
            srga_row_reduce(SRGA(4, 8), 0, [1] * 4, operator.add)

    def test_rejects_bad_row(self):
        with pytest.raises(AlgorithmError):
            srga_row_reduce(SRGA(4, 8), 4, [1] * 8, operator.add)

    def test_rejects_non_grid(self):
        with pytest.raises(AlgorithmError):
            srga_row_reduce("not a grid", 0, [1, 2], operator.add)
