"""Unit tests for XY routing on the SRGA grid."""

import pytest

from repro.extensions.grid_routing import (
    GridMessage,
    GridRoutingError,
    route_xy,
)
from repro.extensions.srga import SRGA


def msg(src, dst, payload=None):
    return GridMessage(src=src, dst=dst, payload=payload or f"{src}->{dst}")


class TestGridMessage:
    def test_self_message_rejected(self):
        with pytest.raises(GridRoutingError):
            GridMessage((1, 1), (1, 1), "x")


class TestRouteXY:
    def test_single_diagonal_message(self):
        grid = SRGA(4, 8)
        result = route_xy(grid, [msg((0, 1), (3, 6), "hello")])
        assert result.delivered == {(3, 6): "hello"}
        assert result.row_rounds >= 1 and result.col_rounds >= 1

    def test_same_row_skips_column_phase(self):
        grid = SRGA(4, 8)
        result = route_xy(grid, [msg((2, 0), (2, 7), "p")])
        assert result.delivered == {(2, 7): "p"}
        assert result.col_rounds == 0

    def test_same_column_skips_row_phase(self):
        grid = SRGA(8, 4)
        result = route_xy(grid, [msg((0, 2), (6, 2), "q")])
        assert result.delivered == {(6, 2): "q"}
        assert result.row_rounds == 0

    def test_many_messages_across_rows(self):
        grid = SRGA(8, 8)
        messages = [
            msg((0, 0), (7, 7)),
            msg((1, 2), (5, 3)),
            msg((2, 6), (0, 1)),  # leftward + upward: mixed orientations
            msg((3, 4), (3, 0)),  # same row, leftward
        ]
        result = route_xy(grid, messages)
        for m in messages:
            assert result.delivered[m.dst] == m.payload

    def test_rows_route_concurrently(self):
        # one message per row: phase cost is one row's cost, not the sum
        grid = SRGA(4, 8)
        messages = [msg((r, 0), (r, 7)) for r in range(4)]
        result = route_xy(grid, messages)
        assert result.row_rounds == 1
        assert result.col_rounds == 0

    def test_column_conflict_detected(self):
        # two messages from the same row to the same destination column:
        # the handoff PE (r, c2) would receive twice in one step.
        grid = SRGA(4, 8)
        with pytest.raises(GridRoutingError, match="conflicting endpoints"):
            route_xy(grid, [msg((0, 1), (2, 5)), msg((0, 3), (3, 5))])

    def test_out_of_range_rejected(self):
        grid = SRGA(4, 4)
        from repro.exceptions import TopologyError

        with pytest.raises(TopologyError):
            route_xy(grid, [msg((0, 0), (4, 1))])

    def test_power_accounted(self):
        grid = SRGA(4, 8)
        result = route_xy(grid, [msg((0, 1), (3, 6))])
        assert result.total_power_units > 0
        assert result.total_rounds == result.row_rounds + result.col_rounds

    def test_crossing_traffic_within_a_row(self):
        # (0,2) and (1,3)-style crossing pairs in one row tree: layered
        grid = SRGA(2, 8)
        messages = [
            msg((0, 0), (1, 2)),
            msg((0, 1), (1, 3)),
        ]
        result = route_xy(grid, messages)
        for m in messages:
            assert result.delivered[m.dst] == m.payload


class TestDuplicateDestination:
    def test_two_messages_one_destination_rejected(self):
        grid = SRGA(4, 8)
        with pytest.raises(GridRoutingError, match="target PE"):
            route_xy(grid, [msg((0, 0), (3, 3)), msg((1, 1), (3, 3))])
