"""Unit tests for the SRGA grid substrate."""

import pytest

from repro.exceptions import TopologyError
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, disjoint_pairs
from repro.extensions.srga import SRGA
from repro.analysis.verifier import verify_schedule


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestConstruction:
    def test_valid_grid(self):
        g = SRGA(4, 8)
        assert g.rows == 4 and g.cols == 8

    def test_rejects_non_power_of_two(self):
        with pytest.raises(TopologyError):
            SRGA(3, 8)
        with pytest.raises(TopologyError):
            SRGA(4, 6)

    def test_pe_bounds(self):
        g = SRGA(4, 4)
        assert g.pe(3, 3) == (3, 3)
        with pytest.raises(TopologyError):
            g.pe(4, 0)
        with pytest.raises(TopologyError):
            g.pe(0, 4)


class TestRouting:
    def test_single_row(self):
        g = SRGA(4, 8)
        cset = cs((0, 3), (1, 2))
        result = g.route(row_sets={1: cset})
        assert set(result.row_schedules) == {1}
        verify_schedule(result.row_schedules[1], cset).raise_if_failed()
        assert result.makespan == 2

    def test_rows_and_columns_concurrent(self):
        g = SRGA(8, 8)
        row_set = crossing_chain(3, 8)
        col_set = disjoint_pairs(2)
        result = g.route(row_sets={0: row_set}, col_sets={5: col_set})
        assert result.makespan == 3  # max over trees, not sum
        verify_schedule(result.row_schedules[0], row_set).raise_if_failed()
        verify_schedule(result.col_schedules[5], col_set).raise_if_failed()

    def test_makespan_empty(self):
        assert SRGA(2, 2).route().makespan == 0

    def test_total_power_aggregates(self):
        g = SRGA(4, 8)
        result = g.route(row_sets={0: cs((0, 1)), 2: cs((0, 1))})
        single = g.route(row_sets={0: cs((0, 1))})
        assert result.total_power == 2 * single.total_power

    def test_max_switch_changes_bounded(self):
        g = SRGA(8, 16)
        result = g.route(
            row_sets={r: crossing_chain(4, 16) for r in range(8)},
            col_sets={c: crossing_chain(2, 8) for c in range(16)},
        )
        assert result.max_switch_changes <= 2  # Theorem 8 per tree

    def test_row_index_validated(self):
        with pytest.raises(TopologyError):
            SRGA(4, 8).route(row_sets={4: cs((0, 1))})

    def test_set_must_fit_tree(self):
        with pytest.raises(TopologyError):
            SRGA(4, 8).route(row_sets={0: cs((0, 9))})

    def test_column_tree_uses_row_count(self):
        g = SRGA(4, 16)
        # column sets live on a 4-leaf tree: PE 3 is the last valid one
        result = g.route(col_sets={0: cs((0, 3))})
        assert result.col_schedules[0].n_leaves == 4
        with pytest.raises(TopologyError):
            g.route(col_sets={0: cs((0, 5))})
