"""Unit tests for left-oriented mirroring and mixed-set decomposition."""

import numpy as np
import pytest

from repro.exceptions import OrientationError
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import random_well_nested
from repro.extensions.oriented import (
    MirroredScheduler,
    OrientedDecompositionScheduler,
    decompose_by_orientation,
)
from repro.analysis.verifier import verify_schedule


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestDecompose:
    def test_split(self):
        mixed = cs((0, 1), (3, 2), (4, 7), (6, 5))
        right, left = decompose_by_orientation(mixed)
        assert sorted(right) == [Communication(0, 1), Communication(4, 7)]
        assert sorted(left) == [Communication(3, 2), Communication(6, 5)]

    def test_pure_right(self):
        right, left = decompose_by_orientation(cs((0, 1)))
        assert len(right) == 1 and len(left) == 0


class TestMirroredScheduler:
    def test_rejects_right_oriented_input(self):
        with pytest.raises(OrientationError):
            MirroredScheduler().schedule(cs((0, 1)), n_leaves=8)

    def test_left_oriented_single_pair(self):
        cset = cs((5, 2))
        s = MirroredScheduler().schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 1

    def test_left_oriented_nested(self):
        # mirror of a nested right set: ((...)) read right-to-left
        cset = cs((7, 0), (6, 1), (5, 2))
        s = MirroredScheduler().schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 3  # all three pairs cross the root

    def test_mirrored_name(self):
        assert MirroredScheduler().name == "mirrored(padr-csa)"

    def test_random_mirrored_sets(self):
        rng = np.random.default_rng(17)
        for _ in range(10):
            right = random_well_nested(8, 32, rng)
            left = right.mirrored(32)
            s = MirroredScheduler().schedule(left, n_leaves=32)
            verify_schedule(s, left).raise_if_failed()


class TestOrientedDecompositionScheduler:
    def test_mixed_set_scheduled_correctly(self):
        mixed = cs((0, 3), (1, 2), (7, 4), (6, 5))
        s = OrientedDecompositionScheduler().schedule(mixed, n_leaves=8)
        verify_schedule(s, mixed).raise_if_failed()

    def test_round_indices_contiguous(self):
        mixed = cs((0, 1), (3, 2))
        s = OrientedDecompositionScheduler().schedule(mixed, n_leaves=8)
        assert [r.index for r in s.rounds] == list(range(s.n_rounds))

    def test_rounds_are_sum_of_oriented_widths(self):
        from repro.comms.width import width
        from repro.cst.topology import CSTTopology

        # right-oriented pairs on leaves 0..15, left-oriented on 16..31:
        # disjoint endpoints by construction.
        right = cs((0, 15), (1, 14), (2, 3))
        left = cs((31, 16), (30, 17))
        mixed = CommunicationSet(list(right) + list(left))
        s = OrientedDecompositionScheduler().schedule(mixed, n_leaves=32)
        verify_schedule(s, mixed).raise_if_failed()
        topo = CSTTopology.of(32)
        w_right = width(right, topo)
        w_left = width(left.mirrored(32), topo)
        assert s.n_rounds == w_right + w_left

    def test_pure_right_set_degenerates_to_csa(self):
        cset = cs((0, 3), (1, 2))
        s = OrientedDecompositionScheduler().schedule(cset, n_leaves=8)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 2

    def test_empty_set(self):
        s = OrientedDecompositionScheduler().schedule(CommunicationSet(()), n_leaves=8)
        assert s.n_rounds == 0

    def test_power_merged_across_phases(self):
        mixed = cs((0, 1), (3, 2))
        s = OrientedDecompositionScheduler().schedule(mixed, n_leaves=8)
        assert s.power.total_units > 0
        assert s.power.rounds == s.n_rounds


class TestNativeLeftOption:
    def test_native_left_equivalent_to_mirrored(self):
        mixed = cs((0, 3), (1, 2), (7, 4), (6, 5))
        via_mirror = OrientedDecompositionScheduler().schedule(mixed, n_leaves=8)
        via_native = OrientedDecompositionScheduler(native_left=True).schedule(
            mixed, n_leaves=8
        )
        verify_schedule(via_native, mixed).raise_if_failed()
        assert via_native.n_rounds == via_mirror.n_rounds
        assert (
            via_native.power.total_units == via_mirror.power.total_units
        )
