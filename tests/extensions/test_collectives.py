"""Unit + property tests for the collective programs (payload-verified)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.collectives import (
    CollectiveError,
    gather,
    reverse,
    scatter,
    shift,
)

POW2_LIST = st.integers(min_value=1, max_value=5).map(
    lambda k: 1 << k
)  # 2..32


class TestGather:
    def test_order_preserved(self):
        result = gather(list("abcdefgh"))
        assert result.values == {7: list("abcdefgh")}
        assert result.steps == 3

    def test_log_rounds(self):
        result = gather(list(range(64)))
        assert result.total_rounds == 6  # every step width 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(CollectiveError):
            gather([1, 2, 3])

    @given(st.lists(st.integers(), min_size=4, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_gather_any_values(self, values):
        assert gather(values).values[3] == values


class TestScatter:
    def test_each_item_lands_on_its_index(self):
        result = scatter(list("abcdefgh"))
        assert result.values == {i: ch for i, ch in enumerate("abcdefgh")}

    def test_inverse_of_gather(self):
        values = list(range(16))
        gathered = gather(values).values[15]
        rescattered = scatter(gathered).values
        assert rescattered == {i: v for i, v in enumerate(values)}

    def test_log_steps(self):
        assert scatter(list(range(32))).steps == 5

    def test_rejects_single(self):
        with pytest.raises(CollectiveError):
            scatter([1])


class TestShift:
    def test_shift_by_one(self):
        result = shift(list("abcd"), 1)
        assert result.values == {1: "a", 2: "b", 3: "c"}

    def test_shift_by_half(self):
        result = shift(list(range(8)), 4)
        assert result.values == {4 + i: i for i in range(4)}

    def test_crossing_distance_needs_layers(self):
        # d=2 on 8 PEs: (0,2),(1,3) cross — at least 2 layers
        result = shift(list(range(8)), 2)
        assert result.steps >= 2
        assert result.values == {i + 2: i for i in range(6)}

    def test_rejects_bad_distance(self):
        with pytest.raises(CollectiveError):
            shift([1, 2, 3, 4], 0)
        with pytest.raises(CollectiveError):
            shift([1, 2, 3, 4], 4)

    @given(
        n_exp=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_shift_semantics_any_distance(self, n_exp, data):
        n = 1 << n_exp
        d = data.draw(st.integers(min_value=1, max_value=n - 1))
        values = list(range(n))
        result = shift(values, d)
        assert result.values == {i + d: i for i in range(n - d)}


class TestReverse:
    def test_small(self):
        result = reverse(list("abcd"))
        assert result.values == {3: "a", 2: "b", 1: "c", 0: "d"}
        assert result.steps == 2

    def test_every_pe_receives(self):
        n = 16
        result = reverse(list(range(n)))
        assert set(result.values) == set(range(n))
        assert all(result.values[n - 1 - i] == i for i in range(n))

    def test_power_is_both_phases(self):
        result = reverse(list(range(8)))
        assert result.total_power_units > 0
        assert result.total_rounds == 8  # width n/2 per phase, twice
