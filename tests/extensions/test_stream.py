"""Unit tests for stream scheduling (cross-set configuration reuse)."""

import numpy as np
import pytest

from repro.comms.generators import (
    crossing_chain,
    disjoint_pairs,
    random_well_nested,
    segmentable_bus,
)
from repro.extensions.stream import StreamScheduler


class TestStreamBasics:
    def test_single_step_equals_plain_csa(self):
        from repro.core.csa import PADRScheduler

        cset = crossing_chain(3)
        stream = StreamScheduler().run([cset], 8)
        plain = PADRScheduler().schedule(cset, n_leaves=8)
        assert stream.steps[0].rounds == plain.n_rounds
        assert stream.steps[0].power_units == plain.power.total_units

    def test_empty_stream(self):
        result = StreamScheduler().run([], 8)
        assert result.total_power == 0
        assert result.total_rounds == 0
        assert result.power_profile() == []

    def test_every_step_verified(self):
        rng = np.random.default_rng(0)
        sets = [random_well_nested(6, 32, rng) for _ in range(5)]
        result = StreamScheduler().run(sets, 32)
        assert len(result.steps) == 5
        assert result.total_rounds == sum(s.rounds for s in result.steps)


class TestCrossSetReuse:
    def test_repeated_set_is_nearly_free(self):
        """The PADR payoff across time: a repeated workload reuses the
        circuits still sitting in the crossbars."""
        cset = segmentable_bus([0, 8, 16, 24, 32])
        result = StreamScheduler().run([cset] * 4, 32)
        profile = result.power_profile()
        assert profile[0] > 0
        # every later repetition re-establishes nothing
        assert profile[1:] == [0, 0, 0]

    def test_fresh_network_control_pays_every_time(self):
        cset = segmentable_bus([0, 8, 16, 24, 32])
        persistent = StreamScheduler().run([cset] * 4, 32)
        fresh = StreamScheduler(fresh_network_per_step=True).run([cset] * 4, 32)
        assert persistent.total_power < fresh.total_power
        assert fresh.power_profile() == [fresh.power_profile()[0]] * 4

    def test_overlapping_sets_pay_only_the_delta(self):
        a = segmentable_bus([0, 16, 32])       # one coarse split
        b = segmentable_bus([0, 8, 16, 32])    # refine the left half only
        result = StreamScheduler().run([a, b], 32)
        fresh = StreamScheduler(fresh_network_per_step=True).run([a, b], 32)
        # step 1 reuses the circuits shared with step 0
        assert result.steps[1].power_units < fresh.steps[1].power_units

    def test_disjoint_sets_pay_full_price(self):
        a = disjoint_pairs(2)             # PEs 0..3
        b = segmentable_bus([8, 12, 16])  # PEs 8..15, nothing shared
        result = StreamScheduler().run([a, b], 16)
        fresh = StreamScheduler(fresh_network_per_step=True).run([a, b], 16)
        # no overlap in paths' first hops... allow equality but never more
        assert result.steps[1].power_units <= fresh.steps[1].power_units


class TestStreamPowerGauge:
    """`stream.power_units.total` must be the stream-wide bill in BOTH
    modes — under fresh_network_per_step the meter resets with the network,
    and the gauge used to reset (and go backwards) with it."""

    @staticmethod
    def _total_gauge(obs):
        gauges = obs.metrics.snapshot()["gauges"]
        [value] = [
            v for k, v in gauges.items() if k.startswith("stream.power_units.total")
        ]
        return value

    def _run(self, fresh):
        from repro.obs import Instrumentation, MetricsRegistry

        obs = Instrumentation(MetricsRegistry(), run="s")
        cset = segmentable_bus([0, 8, 16, 24, 32])
        result = StreamScheduler(
            fresh_network_per_step=fresh, obs=obs
        ).run([cset] * 3, 32)
        return obs, result

    def test_fresh_mode_gauge_accumulates(self):
        obs, result = self._run(fresh=True)
        # every step pays full price, so the stream total is 3 steps' worth
        assert result.total_power == 3 * result.steps[0].power_units
        assert self._total_gauge(obs) == result.total_power
        assert self._total_gauge(obs) > result.steps[-1].power_units

    def test_persistent_mode_gauge_matches_meter(self):
        obs, result = self._run(fresh=False)
        assert self._total_gauge(obs) == result.total_power


class TestStreamCorrectnessUnderReuse:
    def test_stale_configurations_never_misroute(self):
        """Leftover connections from earlier sets must not corrupt later
        deliveries — each step is verified end to end inside run()."""
        rng = np.random.default_rng(42)
        sets = [random_well_nested(8, 64, rng) for _ in range(10)]
        StreamScheduler().run(sets, 64)  # raises on any misdelivery

    def test_alternating_widths(self):
        sets = [crossing_chain(1, 16), crossing_chain(4, 16), crossing_chain(2, 16)]
        result = StreamScheduler().run(sets, 16)
        assert [s.rounds for s in result.steps] == [1, 4, 2]


class TestStreamProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from tests.conftest import wellnested_set_st

    @given(
        sets=st.lists(wellnested_set_st(max_pairs=5), min_size=1, max_size=4)
    )
    @settings(max_examples=40, deadline=None)
    def test_every_stream_step_stays_width_optimal(self, sets):
        """Leftover configurations never cost rounds: each step of a
        persistent stream still finishes in exactly its own width."""
        from repro.comms.width import width
        from repro.cst.topology import CSTTopology

        topo = CSTTopology.of(64)
        result = StreamScheduler().run(sets, 64)
        for step, cset in zip(result.steps, sets):
            assert step.rounds == width(cset, topo)
