"""The fabric behind both services: parity, doors, lifecycle.

Satellite 4's acceptance surface lives here — a single-shard fabric must
be bit-identical to the PR-4 service path, and a multi-shard fabric must
survive the live parity check (every shard's local leg is a faithful
PADR run on its relabelled subset).
"""

from __future__ import annotations

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.core.csa import PADRScheduler
from repro.fabric import FabricController
from repro.io import schedule_to_dict
from repro.obs import Instrumentation, MetricsRegistry
from repro.service import (
    SchedulerService,
    StreamRequest,
    StreamingSchedulerService,
    TenantQuota,
    mixed_workloads,
)


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


def roomy_quota() -> TenantQuota:
    return TenantQuota(rate=50.0, burst=100.0)


@pytest.fixture
def batch():
    return mixed_workloads(32, 10, seed=3)


class TestBatchServiceOnFabric:
    def test_single_shard_fabric_bit_identical_to_plain_service(self, batch):
        with SchedulerService(workers=1) as plain:
            baseline = plain(batch, n_leaves=32)
        fab = FabricController(1, 32, parallel=False)
        with SchedulerService(fabric=fab) as svc:
            report = svc(batch, n_leaves=32)
        assert report.n_done == len(batch)
        for tid in baseline.schedules():
            assert (
                report.results[tid].payload == baseline.results[tid].payload
            )

    def test_multi_shard_fabric_passes_live_parity(self, batch):
        fab = FabricController(4, 32, parallel=False)
        with SchedulerService(fabric=fab, parity_check=True) as svc:
            report = svc(batch, n_leaves=32)
        assert report.n_done == len(batch)
        direct = PADRScheduler()
        for tid, c in enumerate(batch):
            expected = schedule_to_dict(direct.schedule(c, n_leaves=32))
            assert report.results[tid].payload == expected

    def test_oversized_request_rejected_at_the_door(self):
        fab = FabricController(2, 16, parallel=False)
        with SchedulerService(fabric=fab) as svc:
            ticket = svc.submit(cs((0, 1)), n_leaves=32)
        assert ticket.accepted is False
        assert "fabric trees have 16" in ticket.reason

    def test_fabric_requests_spread_over_shards(self, batch):
        fab = FabricController(4, 32, parallel=False)
        with SchedulerService(fabric=fab) as svc:
            svc(batch, n_leaves=32)
        assert sum(fab.shard_load) > 0
        assert sum(1 for load in fab.shard_load if load) > 1


class TestStreamingServiceOnFabric:
    def build(self, fab, **kw):
        kw.setdefault("default_quota", roomy_quota())
        return StreamingSchedulerService(fabric=fab, **kw)

    def test_fabric_stream_bit_identical_to_direct(self):
        csets = mixed_workloads(16, 6, seed=8)
        svc = self.build(FabricController(2, 16, parallel=False))
        for c in csets:
            svc.submit(StreamRequest(cset=c, n_leaves=16, deadline=100))
        report = svc.run()
        direct = PADRScheduler()
        for rid, c in enumerate(csets):
            expected = schedule_to_dict(direct.schedule(c, n_leaves=16))
            assert report.results[rid].payload == expected

    def test_multi_tenant_stream_settles_everything(self):
        fab = FabricController(4, 32, parallel=False)
        svc = self.build(fab, parity_check=True)
        csets = mixed_workloads(32, 12, seed=4)
        for i, c in enumerate(csets):
            svc.submit(
                StreamRequest(
                    cset=c,
                    n_leaves=32,
                    deadline=100,
                    tenant=f"tenant-{i % 3}",
                )
            )
        report = svc.run()
        assert report.n_done == len(csets)
        # tenant-pinned routing: each tenant's work stays on one shard
        assert len({fab.route_tenant(f"tenant-{i}") for i in range(3)}) >= 1

    def test_oversized_stream_request_rejected(self):
        svc = self.build(FabricController(2, 16, parallel=False))
        ticket = svc.submit(
            StreamRequest(cset=cs((0, 1)), n_leaves=32, deadline=10)
        )
        assert ticket.accepted is False
        assert "fabric trees have 16" in ticket.reason

    def test_fabric_metrics_flow_through_streaming(self):
        reg = MetricsRegistry()
        obs = Instrumentation(reg, run="t")
        fab = FabricController(2, 16, parallel=False, obs=obs)
        svc = self.build(fab, obs=obs)
        svc.submit(StreamRequest(cset=cs((0, 3)), n_leaves=16, deadline=10))
        svc.run()
        snap = reg.snapshot()
        names = set(snap["counters"]) | set(snap["gauges"])
        assert any("fabric.requests" in n for n in names)
