"""Fabric scheduling of arbitrary global sets via decomposition."""

import numpy as np
import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import random_arbitrary
from repro.core.base import ScheduleResult
from repro.core.config import SchedulerConfig
from repro.exceptions import NotWellNestedError
from repro.fabric import FabricController, FabricSchedule, GeneralFabricSchedule


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


AUTO = SchedulerConfig(decompose="auto")


def make_fabric(**kw):
    kw.setdefault("config", AUTO)
    return FabricController(2, 16, parallel=False, **kw)


class TestScheduleGlobalGeneral:
    def test_arbitrary_global_set_delivers_everything(self):
        cset = random_arbitrary(10, 32, np.random.default_rng(3))
        gs = make_fabric().schedule_global(cset)
        assert isinstance(gs, GeneralFabricSchedule)
        assert set(gs.delivered) == set(cset.comms)
        assert gs.undelivered == ()
        assert gs.n_batches >= gs.lower_bound >= 1

    def test_left_pairs_route_through_the_mirror_lens(self):
        # purely local left pairs on both shards plus a left spanning pair
        # nesting around the first ([1,18] contains [3,6]): one left batch
        cset = cs((6, 3), (30, 19), (18, 1))
        gs = make_fabric().schedule_global(cset)
        assert isinstance(gs, GeneralFabricSchedule)
        assert set(gs.delivered) == set(cset.comms)
        assert gs.batch_orientations == ("left",)

    def test_well_nested_set_keeps_the_single_phase_path(self):
        cset = cs((0, 31), (1, 2), (17, 20))
        fs = make_fabric().schedule_global(cset)
        assert isinstance(fs, FabricSchedule)
        assert set(fs.delivered) == set(cset.comms)

    def test_never_mode_pre_rejects(self):
        with pytest.raises(NotWellNestedError):
            make_fabric().schedule_global(
                cs((0, 2), (1, 3)), decompose="never"
            )

    def test_strict_default_raises_from_the_local_leg(self):
        from repro.exceptions import ReproError

        fabric = FabricController(2, 16, parallel=False)
        with pytest.raises(ReproError):
            fabric.schedule_global(cs((0, 2), (1, 3)))

    def test_call_override_beats_config(self):
        fabric = FabricController(2, 16, parallel=False)  # strict config
        gs = fabric.schedule_global(cs((0, 2), (1, 3)), decompose="auto")
        assert isinstance(gs, GeneralFabricSchedule)

    def test_phases_serialize_rounds_and_power(self):
        cset = random_arbitrary(10, 32, np.random.default_rng(5))
        gs = make_fabric().schedule_global(cset)
        assert gs.total_rounds == sum(p.total_rounds for p in gs.phases)
        assert gs.total_power_units == sum(
            p.total_power_units for p in gs.phases
        )

    def test_protocol_conformance_and_stats(self):
        cset = random_arbitrary(8, 32, np.random.default_rng(7))
        gs = make_fabric().schedule_global(cset)
        assert isinstance(gs, ScheduleResult)
        stats = gs.stats()
        assert stats.n_comms == len(cset)
        assert stats.n_rounds == gs.rounds_used

    def test_deterministic(self):
        cset = random_arbitrary(8, 32, np.random.default_rng(9))
        a = make_fabric().schedule_global(cset)
        b = make_fabric().schedule_global(cset)
        assert a.delivered == b.delivered
        assert a.total_rounds == b.total_rounds
        assert a.batch_orientations == b.batch_orientations
