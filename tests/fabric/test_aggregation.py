"""Splitting, cross-round packing and the fabric schedule's accounting."""

import pytest
from hypothesis import given, settings

from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.exceptions import SchedulingError
from repro.fabric.aggregation import (
    FabricSchedule,
    pack_cross_rounds,
    shard_of,
    split,
)
from repro.fabric.controller import FabricController
from tests.conftest import wellnested_set_st


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestSplit:
    def test_local_pairs_relabel_onto_their_shard(self):
        local, cross = split(cs((0, 3), (9, 10)), 2, 8)
        assert cross == []
        assert local[0] == cs((0, 3))
        assert local[1] == cs((1, 2))  # 9, 10 shifted down by 8

    def test_spanning_pair_reported_with_both_shards(self):
        local, cross = split(cs((2, 13)), 2, 8)
        assert local == {}
        assert cross == [(Communication(2, 13), 0, 1)]

    def test_oversized_set_rejected(self):
        with pytest.raises(SchedulingError, match="beyond the fabric"):
            split(cs((0, 16)), 2, 8)

    def test_shard_of(self):
        assert [shard_of(g, 4) for g in (0, 3, 4, 11)] == [0, 0, 1, 2]

    def test_local_subsets_stay_well_nested(self):
        # nesting survives both subsetting and the relabelling shift.
        from repro.comms.wellnested import is_well_nested

        global_set = cs((0, 15), (1, 6), (2, 5), (8, 11), (9, 10))
        local, _ = split(global_set, 2, 8)
        for subset in local.values():
            assert is_well_nested(subset)


class TestPackCrossRounds:
    def test_distinct_shard_pairs_share_a_round(self):
        hops = pack_cross_rounds(
            [(Communication(0, 12), 0, 3), (Communication(4, 8), 1, 2)]
        )
        assert {h.round_index for h in hops} == {0}

    def test_shared_uplink_serializes(self):
        # both pairs leave shard 0: one uplink port, two rounds.
        hops = pack_cross_rounds(
            [(Communication(0, 8), 0, 1), (Communication(1, 17), 0, 2)]
        )
        assert sorted(h.round_index for h in hops) == [0, 1]

    def test_shared_downlink_serializes(self):
        hops = pack_cross_rounds(
            [(Communication(0, 16), 0, 2), (Communication(8, 17), 1, 2)]
        )
        assert sorted(h.round_index for h in hops) == [0, 1]

    def test_per_round_port_constraint_holds(self):
        # many-to-many traffic: in every round each shard's uplink and
        # downlink carry at most one pair.
        cross = [
            (Communication(i, 8 * (i % 3 + 1) + i), i % 2, i % 3 + 1)
            for i in range(0, 8, 2)
        ]
        hops = pack_cross_rounds(cross)
        for r in {h.round_index for h in hops}:
            in_round = [h for h in hops if h.round_index == r]
            ups = [h.src_shard for h in in_round]
            downs = [h.dst_shard for h in in_round]
            assert len(ups) == len(set(ups))
            assert len(downs) == len(set(downs))

    def test_hop_power_accounting(self):
        (hop,) = pack_cross_rounds([(Communication(0, 12), 0, 1)])
        # up-leg log2(8)=3, root hop 1, down-leg 3
        assert hop.power_units(8) == 7

    def test_empty(self):
        assert pack_cross_rounds([]) == []


class TestFabricSchedule:
    def fabric_run(self, pairs, trees=2, width=8):
        fab = FabricController(trees, width, parallel=False)
        return fab.schedule_global(cs(*pairs))

    def test_round_accounting_serializes_epochs(self):
        fs = self.fabric_run([(0, 15), (1, 2), (8, 11)])
        assert fs.local_rounds == 1
        assert fs.cross_rounds == 1
        assert fs.total_rounds == 2

    def test_delivered_is_the_input_set(self):
        pairs = [(0, 15), (1, 6), (2, 5), (8, 11)]
        fs = self.fabric_run(pairs)
        assert set(fs.delivered) == set(cs(*pairs))

    def test_power_splits_into_local_and_cross(self):
        fs = self.fabric_run([(0, 15), (1, 2)])
        assert fs.cross_power_units == 7  # one spanning pair at width 8
        assert fs.total_power_units == fs.local_power_units + 7

    def test_cross_ratio(self):
        fs = self.fabric_run([(0, 15), (1, 2), (3, 4)])
        assert fs.cross_ratio == pytest.approx(1 / 3)

    def test_overhead_vs_union(self):
        pairs = [(0, 15), (1, 14), (2, 3), (8, 9)]
        fs = self.fabric_run(pairs)
        union = SchedulerConfig().build().schedule(cs(*pairs), n_leaves=16)
        extra_rounds, extra_power = fs.overhead_vs_union(union)
        assert fs.total_rounds == union.n_rounds + extra_rounds
        assert fs.total_power_units == union.power.total_units + extra_power

    def test_purely_local_fabric_has_no_cross_epoch(self):
        fs = self.fabric_run([(1, 2), (9, 14)])
        assert fs.cross_rounds == 0
        assert fs.cross_power_units == 0
        assert fs.total_rounds == fs.local_rounds


class TestGlobalParityProperty:
    @given(cset=wellnested_set_st(max_pairs=8, n_leaves=32))
    @settings(max_examples=40, deadline=None)
    def test_fabric_delivers_exactly_the_union_pairs(self, cset):
        """Any shardable workload: the fabric's delivered pair set equals
        what a single-tree PADR run on the union delivers."""
        fab = FabricController(4, 8, parallel=False)
        fs = fab.schedule_global(cset)
        union = SchedulerConfig().build().schedule(cset, n_leaves=32)
        assert set(fs.delivered) == set(union.performed()) == set(cset)

    @given(cset=wellnested_set_st(max_pairs=8, n_leaves=16))
    @settings(max_examples=40, deadline=None)
    def test_single_shard_fabric_matches_direct_schedule(self, cset):
        """A 1-tree fabric is the degenerate case: its one local schedule
        must be the direct scheduler's output, with no cross epoch."""
        fab = FabricController(1, 16, parallel=False)
        fs = fab.schedule_global(cset)
        assert fs.cross == ()
        if len(cset):
            direct = SchedulerConfig().build().schedule(cset, n_leaves=16)
            (local,) = fs.local.values()
            assert local.rounds == direct.rounds
            assert local.power.total_units == direct.power.total_units
        assert isinstance(fs, FabricSchedule)
