"""FabricController: routing, execution, rebalancing, lifecycle."""

import os
import signal

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.core.config import SchedulerConfig
from repro.exceptions import SchedulingError
from repro.fabric import FabricController
from repro.io import cset_to_dict, schedule_from_dict
from repro.obs import Instrumentation, MetricsRegistry
from repro.service.cache import canonical_signature
from repro.service.workloads import mixed_workloads


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


def work(cset, n_leaves, tid=0):
    return (tid, cset_to_dict(cset), n_leaves)


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(SchedulingError, match="tree_count"):
            FabricController(0, 8)
        with pytest.raises(SchedulingError, match="power of two"):
            FabricController(2, 6)
        with pytest.raises(SchedulingError, match="power of two"):
            FabricController(2, 1)

    def test_single_tree_is_legal(self):
        assert FabricController(1, 8, parallel=False).tree_count == 1


class TestRouting:
    def test_route_is_deterministic_and_in_range(self):
        fab = FabricController(4, 64, parallel=False)
        keys = [
            canonical_signature(c, 64)
            for c in mixed_workloads(64, 12, seed=3)
        ]
        shards = [fab.route(k) for k in keys]
        assert shards == [fab.route(k) for k in keys]
        assert all(0 <= s < 4 for s in shards)

    def test_equal_signatures_share_a_shard(self):
        # the cache-coherence property: same placed workload, same tree.
        fab = FabricController(8, 16, parallel=False)
        a = canonical_signature(cs((0, 3), (1, 2)), 16)
        b = canonical_signature(cs((0, 3), (1, 2)), 16)
        assert fab.route(a) == fab.route(b)

    def test_route_tenant_spreads_and_is_stable(self):
        fab = FabricController(4, 16, parallel=False)
        tenants = [f"tenant-{i}" for i in range(32)]
        shards = [fab.route_tenant(t) for t in tenants]
        assert shards == [fab.route_tenant(t) for t in tenants]
        assert len(set(shards)) > 1  # 32 tenants cannot all collide

    def test_crc_not_builtin_hash(self):
        # routing must not depend on the per-process hash salt; the salted
        # builtin hash() would break cross-process agreement.  Pin one
        # routing output so any change to the function is an explicit act.
        fab = FabricController(4, 16, parallel=False)
        assert fab.route_tenant("tenant-0") == fab.route_tenant("tenant-0")
        import zlib

        expected = zlib.crc32(b"0:tenant:tenant-0") % 4
        assert fab.route_tenant("tenant-0") == expected


class TestExecute:
    def test_inline_execution_settles_every_request(self):
        fab = FabricController(2, 8, parallel=False)
        reqs = [work(cs((0, 3)), 8, 1), work(cs((0, 1)), 8, 2)]
        out = fab.execute(reqs, [0, 1])
        assert sorted(r[0] for r in out) == [1, 2]
        assert all(status == "ok" for _, status, _ in out)

    def test_inline_and_pooled_agree_bitwise(self):
        csets = mixed_workloads(16, 6, seed=1)
        reqs = [work(c, 16, i) for i, c in enumerate(csets)]
        shards = [i % 2 for i in range(len(reqs))]
        inline = FabricController(2, 16, parallel=False)
        a = {tid: payload for tid, _, payload in inline.execute(reqs, shards)}
        with FabricController(2, 16) as pooled:
            b = {
                tid: payload for tid, _, payload in pooled.execute(reqs, shards)
            }
        assert a == b  # serialized schedules, byte-for-byte equal dicts

    def test_mismatched_lengths_rejected(self):
        fab = FabricController(2, 8, parallel=False)
        with pytest.raises(SchedulingError, match="shard ids"):
            fab.execute([work(cs((0, 1)), 8)], [0, 1])

    def test_out_of_range_shard_rejected(self):
        fab = FabricController(2, 8, parallel=False)
        with pytest.raises(SchedulingError, match="out of range"):
            fab.execute([work(cs((0, 1)), 8)], [2])

    def test_load_accounting_per_shard(self):
        fab = FabricController(2, 8, parallel=False)
        fab.execute([work(cs((0, 1)), 8, i) for i in range(3)], [0, 0, 1])
        assert fab.shard_load == [2, 1]

    def test_results_decode_to_real_schedules(self):
        fab = FabricController(2, 8, parallel=False)
        (resp,) = fab.execute([work(cs((0, 3), (1, 2)), 8, 7)], [1])
        tid, status, payload = resp
        assert (tid, status) == (7, "ok")
        assert schedule_from_dict(payload).n_rounds >= 1

    def test_dead_shard_worker_reports_transient_and_recovers(self):
        # SIGKILL the one worker behind shard 0, mid-fabric: its requests
        # come back transient, the pool is discarded, and the next wave
        # runs on a fresh worker.
        with FabricController(2, 8, shard_timeout=5.0) as fab:
            fab.execute([work(cs((0, 1)), 8, 0)], [0])  # spawn the pool
            victim = next(iter(fab._pools[0]._processes))
            os.kill(victim, signal.SIGKILL)
            out = fab.execute([work(cs((0, 1)), 8, 1)], [0])
            assert out == [(1, "transient", out[0][2])]
            assert "failure" in out[0][2]
            assert 0 not in fab._pools
            retry = fab.execute([work(cs((0, 1)), 8, 1)], [0])
            assert retry[0][1] == "ok"


class TestRebalance:
    def build(self, skew=2.0, window=8):
        return FabricController(
            2, 8, parallel=False, rebalance_skew=skew, rebalance_window=window
        )

    def test_skewed_window_rotates_salt(self):
        fab = self.build()
        tenants = [f"t{i}" for i in range(64)]
        before = {t: fab.route_tenant(t) for t in tenants}
        fab.execute([work(cs((0, 1)), 8, i) for i in range(8)], [0] * 8)
        assert fab.maybe_rebalance() is True
        assert fab.rebalances == 1
        assert fab.rebalance_events[0][1] == (8, 0)
        after = {t: fab.route_tenant(t) for t in tenants}
        assert before != after  # the salt moved the mapping

    def test_balanced_window_does_not_rotate(self):
        fab = self.build()
        fab.execute(
            [work(cs((0, 1)), 8, i) for i in range(8)], [0, 1, 0, 1, 0, 1, 0, 1]
        )
        assert fab.maybe_rebalance() is False
        assert fab.rebalances == 0

    def test_under_window_volume_never_judged(self):
        fab = self.build(window=64)
        fab.execute([work(cs((0, 1)), 8, i) for i in range(8)], [0] * 8)
        assert fab.maybe_rebalance() is False

    def test_zero_skew_disables(self):
        fab = self.build(skew=0.0)
        fab.execute([work(cs((0, 1)), 8, i) for i in range(8)], [0] * 8)
        assert fab.maybe_rebalance() is False

    def test_single_tree_never_rebalances(self):
        fab = FabricController(
            1, 8, parallel=False, rebalance_skew=1.0, rebalance_window=1
        )
        fab.execute([work(cs((0, 1)), 8)], [0])
        assert fab.maybe_rebalance() is False


class TestMetricsAndLifecycle:
    def test_fabric_metrics_emitted(self):
        obs = Instrumentation(MetricsRegistry(), run="t")
        fab = FabricController(2, 8, parallel=False, obs=obs)
        fab.execute([work(cs((0, 1)), 8, 0)], [0])
        fab.schedule_global(cs((0, 15), (1, 2)))
        snap = obs.metrics.snapshot()
        names = set(snap["counters"]) | set(snap["gauges"])
        for wanted in (
            "fabric.requests",
            "fabric.shard.load",
            "fabric.cross_shard.pairs",
            "fabric.cross_shard.ratio",
        ):
            assert any(wanted in name for name in names), wanted

    def test_close_is_idempotent_and_context_manager(self):
        with FabricController(2, 8) as fab:
            fab.execute([work(cs((0, 1)), 8)], [0])
        fab.close()
        fab.terminate()
        assert fab._pools == {}

    def test_stats_snapshot(self):
        fab = FabricController(2, 8, parallel=False)
        fab.execute([work(cs((0, 1)), 8)], [1])
        stats = fab.stats()
        assert stats["tree_count"] == 2
        assert stats["shard_load"] == [0, 1]
        assert stats["requests"] == 1
