"""WorkloadProfile extraction and CapacityPlanner sizing."""

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.exceptions import SchedulingError
from repro.fabric import CapacityPlanner, FabricPlan, WorkloadProfile
from repro.io import fabric_plan_from_dict, fabric_plan_to_dict, save_arrivals
from repro.service.streaming import StreamRequest
from repro.slo import record_workload


def req(span, *, release=0, tenant="default", n_leaves=None):
    cset = CommunicationSet([Communication(0, span)])
    return StreamRequest(
        cset=cset, n_leaves=n_leaves, release_time=release, tenant=tenant
    )


class TestWorkloadProfile:
    def test_profiles_the_sizing_triple(self):
        arrivals = [
            req(3, release=0, tenant="a"),
            req(3, release=0, tenant="b"),
            req(3, release=0, tenant="a"),
            req(21, release=1, tenant="c"),
        ]
        p = WorkloadProfile.from_arrivals(arrivals)
        assert p.n_requests == 4
        assert p.max_leaves == 32  # widest request spans PE 21 -> 32 leaves
        assert p.peak_arrivals == 3
        assert p.mean_arrivals == pytest.approx(2.0)
        assert p.tenants == ("a", "b", "c")

    def test_explicit_width_rounds_to_power_of_two(self):
        p = WorkloadProfile.from_arrivals([req(1, n_leaves=48)])
        assert p.max_leaves == 64

    def test_empty_trace_rejected(self):
        with pytest.raises(SchedulingError, match="empty arrival trace"):
            WorkloadProfile.from_arrivals([])

    def test_from_trace_round_trips_through_io(self, tmp_path):
        arrivals = record_workload(n_leaves=64, count=24, seed=5)
        path = tmp_path / "trace.json"
        save_arrivals(path, arrivals)
        assert WorkloadProfile.from_trace(path) == WorkloadProfile.from_arrivals(
            arrivals
        )


class TestCapacityPlanner:
    def profile(self, peak, width=16):
        return WorkloadProfile(
            n_requests=peak,
            max_leaves=width,
            peak_arrivals=peak,
            mean_arrivals=float(peak),
            tenants=("t",),
        )

    def test_low_volume_gets_a_single_tree(self):
        plan = CapacityPlanner(shard_capacity=16).plan(self.profile(10))
        assert (plan.tree_count, plan.spine_switches) == (1, 0)
        assert plan.switches == 15  # one 16-leaf CST, no spine
        assert plan.utilization == pytest.approx(10 / 16)

    def test_peak_forces_more_trees(self):
        plan = CapacityPlanner(shard_capacity=16).plan(self.profile(40))
        assert plan.tree_count == 3  # ceil(40 / 16)
        assert plan.spine_switches == 2
        assert plan.switches == 3 * 15 + 2
        assert plan.total_leaves == 48

    def test_leaf_width_follows_widest_request(self):
        plan = CapacityPlanner().plan(self.profile(1, width=128))
        assert plan.leaf_width == 128

    def test_infeasible_peak_fails_loudly(self):
        with pytest.raises(SchedulingError, match="no fabric of <= 2 trees"):
            CapacityPlanner(shard_capacity=4, max_trees=2).plan(self.profile(9))

    def test_candidates_enumerate_ascending(self):
        cands = CapacityPlanner(max_trees=5).candidates(self.profile(1))
        assert [c.tree_count for c in cands] == [1, 2, 3, 4, 5]
        assert all(isinstance(c, FabricPlan) for c in cands)

    def test_bad_parameters_rejected(self):
        with pytest.raises(SchedulingError, match="shard_capacity"):
            CapacityPlanner(shard_capacity=0)
        with pytest.raises(SchedulingError, match="max_trees"):
            CapacityPlanner(max_trees=0)

    def test_plan_serialization_round_trip(self, tmp_path):
        import json

        plan = CapacityPlanner(shard_capacity=8).plan(self.profile(20))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(fabric_plan_to_dict(plan)))
        assert fabric_plan_from_dict(json.loads(path.read_text())) == plan
