#!/usr/bin/env python3
"""Benchmark well-nested decomposition of arbitrary communication sets.

Drives random arbitrary (non-well-nested) sets through the unified
``decompose="auto"`` door and records what the lowering costs: batch
count against the certified crossing-clique lower bound and the greedy
``max_crossing_degree + 1`` upper bound, rounds against the single-batch
width optimum, and the round/power overhead the decomposition pays.

Results land under a top-level ``"decompose"`` key of
``results/BENCH_scaling.json``; every other key is preserved.

Usage::

    PYTHONPATH=src python scripts/run_decompose_bench.py           # full sweep
    PYTHONPATH=src python scripts/run_decompose_bench.py --smoke   # CI gate

The smoke gate schedules random arbitrary sets at n=256 and fails
unless every run delivers all pairs exactly once, keeps the batch count
within [lower bound, greedy bound], and (sanity) a well-nested control
input passes through as a single batch at the width optimum.  The
overhead ratio vs the w-round optimum is always reported and recorded.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.comms.decompose import decompose, max_crossing_degree
from repro.comms.generators import random_arbitrary, random_well_nested
from repro.core.config import SchedulerConfig

RESULTS = Path(__file__).resolve().parent.parent / "results" / "BENCH_scaling.json"

N_LEAVES = 256
FULL_PAIRS = (8, 16, 32, 48)
FULL_SEEDS = (0, 1, 2, 3)
SMOKE_RUNS = ((12, 11), (24, 12), (32, 13), (48, 14))  # (pairs, seed)


def greedy_bound(cset) -> int:
    """``max_crossing_degree + 1`` per populated orientation, summed."""
    bound = 0
    for subset in (cset.right_oriented_subset(), cset.left_oriented_subset()):
        if len(subset):
            bound += max_crossing_degree(subset.comms) + 1
    return bound


def run_one(pairs: int, seed: int, *, alpha: float = 0.0) -> dict:
    """Schedule one random arbitrary set through the auto door; gate it."""
    rng = np.random.default_rng(seed)
    cset = random_arbitrary(pairs, N_LEAVES, rng)
    config = SchedulerConfig(decompose="auto", recfg_alpha=alpha)
    result = config.build().schedule(cset, n_leaves=N_LEAVES)

    failures = []
    delivered = result.delivered
    if len(delivered) != len(cset) or set(delivered) != set(cset.comms):
        failures.append(
            f"pairs={pairs} seed={seed}: delivered {len(delivered)}/{len(cset)}"
        )
    bound = greedy_bound(cset)
    summary = result.summary()
    if not summary["batch_lower_bound"] <= summary["batches"] <= bound:
        failures.append(
            f"pairs={pairs} seed={seed}: {summary['batches']} batches outside "
            f"[{summary['batch_lower_bound']}, greedy {bound}]"
        )

    row = {
        "pairs": pairs,
        "seed": seed,
        "alpha": alpha,
        "batches": summary["batches"],
        "batch_lower_bound": summary["batch_lower_bound"],
        "greedy_bound": bound,
        "rounds": summary["rounds"],
        "optimum_rounds": summary["optimum_rounds"],
        "round_overhead": summary["round_overhead"],
        "overhead_ratio": summary["overhead_ratio"],
        "merged_rounds": summary["merged_rounds"],
        "power_units": summary["power_units"],
        "reconfig_changes": summary["reconfig_changes"],
        "failures": failures,
    }
    print(
        f"pairs={pairs} seed={seed} alpha={alpha}: "
        f"{row['batches']} batches (lb {row['batch_lower_bound']}, "
        f"greedy {bound}), {row['rounds']} rounds vs optimum "
        f"{row['optimum_rounds']} (x{row['overhead_ratio']}, "
        f"{row['merged_rounds']} merged)"
    )
    return row


def well_nested_control(seed: int = 5) -> list[str]:
    """A well-nested input must pass through as one batch at the optimum."""
    rng = np.random.default_rng(seed)
    cset = random_well_nested(24, N_LEAVES, rng)
    result = SchedulerConfig(decompose="auto").build().schedule(
        cset, n_leaves=N_LEAVES
    )
    failures = []
    dec = decompose(cset)
    if dec.n_batches != 1:
        failures.append(f"well-nested control decomposed into {dec.n_batches} batches")
    if hasattr(result, "summary"):  # general path taken — must still be optimal
        s = result.summary()
        if s["batches"] != 1 or s["round_overhead"] != 0:
            failures.append(f"well-nested control paid overhead: {s}")
    elif set(result.delivered) != set(cset.comms):
        failures.append("well-nested control lost pairs on the direct path")
    return failures


def record(rows: list[dict], *, mode: str) -> None:
    payload = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    payload["decompose"] = {
        "mode": mode,
        "n_leaves": N_LEAVES,
        "rows": [{k: v for k, v in row.items() if k != "failures"} for row in rows],
    }
    RESULTS.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote decompose {mode} rows to {RESULTS}")


def run_smoke() -> int:
    rows = [run_one(pairs, seed) for pairs, seed in SMOKE_RUNS]
    failures = [f for row in rows for f in row["failures"]]
    failures += well_nested_control()
    record(rows, mode="smoke")
    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        worst = max(row["overhead_ratio"] for row in rows)
        print(
            f"decompose smoke ok: {len(rows)} arbitrary sets at n={N_LEAVES} "
            f"delivered exactly once within the greedy bound "
            f"(worst overhead x{worst})"
        )
    return 1 if failures else 0


def run_full(alphas: tuple[float, ...] = (0.0, 2.0)) -> int:
    rows = [
        run_one(pairs, seed, alpha=alpha)
        for alpha in alphas
        for pairs in FULL_PAIRS
        for seed in FULL_SEEDS
    ]
    failures = [f for row in rows for f in row["failures"]]
    record(rows, mode="full")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="run the CI gate")
    args = ap.parse_args(argv)
    return run_smoke() if args.smoke else run_full()


if __name__ == "__main__":
    sys.exit(main())
