#!/usr/bin/env python3
"""Time the PADR scheduler end-to-end across tree sizes.

Writes ``results/BENCH_scaling.json`` — one row per tree size with the
wall-clock time of a full ``PADRScheduler.schedule`` call (Phase 1 +
Phase-2 rounds + commits + transfers) on a sparse random well-nested set,
plus the logical (paper-model) and physical (simulator-walked) control
message counts, so the frontier-pruning savings are tracked alongside the
timing trajectory.

Each row also embeds a metrics-registry snapshot (``"metrics"``) from a
separate, *instrumented* run of the same workload — aggregate counters
and summary gauges only, per-switch families folded to max/total so the
file stays small.  The timed run stays uninstrumented, so the wall-clock
trajectory measures the same hot path as before.

Usage::

    PYTHONPATH=src python scripts/run_perf_suite.py            # full sweep
    PYTHONPATH=src python scripts/run_perf_suite.py --smoke    # CI subset
    PYTHONPATH=src python scripts/run_perf_suite.py --smoke \
        --baseline results/BENCH_scaling.json                  # regression gate
    PYTHONPATH=src python scripts/run_perf_suite.py \
        --columnar-smoke                                       # columnar CI gate

The full sweep also records a ``"columnar"`` trajectory — fast vs
columnar single-schedule times plus same-shape batched throughput — next
to the per-size ``"rows"``; existing trajectories written by other suites
(e.g. the service layer's ``"service"`` key) are preserved in place.
``--columnar-smoke`` is the CI gate: schedules must be bit-identical
between the fast and columnar engines on mixed workloads, and the
columnar path must clear a hardware-tolerant speedup floor.

With ``--baseline`` each measured size is compared against the checked-in
baseline row; a wall-time regression worse than ``--tolerance`` (default
2.0×) fails the run with exit code 1.  Counts (logical/physical messages)
must match the baseline exactly — they are deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.comms.generators import random_well_nested
from repro.comms.width import width
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.cst.network import CSTNetwork
from repro.cst.topology import CSTTopology

#: full trajectory (2^6 .. 2^14) and the CI smoke subset.
FULL_SIZES = [2**k for k in range(6, 15)]
SMOKE_SIZES = [2**6, 2**8, 2**10]

#: sparse workload — fixed pair count keeps w ≪ n across the sweep.
PAIRS = 24
SEED = 7

#: same-shape batch width for the batched-throughput trajectory.
BATCH_B = 16

#: columnar smoke gate: parity size, perf size, required speedup.
SMOKE_PARITY_N = 256
SMOKE_PERF_N = 4096
SMOKE_MIN_SPEEDUP = 1.5


def registry_snapshot(cset, n: int) -> dict:
    """Metrics from one instrumented (untimed) run, folded for archival.

    Per-switch counter families collapse to their max (the Theorem-8
    quantity) and total; nondeterministic spans are dropped so snapshots
    stay diffable across hosts.
    """
    from repro.obs import Instrumentation, MetricsRegistry
    from repro.obs.registry import parse_key

    obs = Instrumentation(MetricsRegistry(), run="csa")
    PADRScheduler(validate_input=False, obs=obs).schedule(
        cset, network=CSTNetwork.of_size(n)
    )
    snap = obs.metrics.snapshot()
    counters: dict[str, int] = {}
    per_switch: dict[str, list[int]] = {}
    for key, value in snap["counters"].items():
        name, labels = parse_key(key)
        if "switch" in labels:
            per_switch.setdefault(name, []).append(value)
        else:
            counters[name] = value
    for name, values in per_switch.items():
        counters[f"{name}.max_switch"] = max(values)
        counters[f"{name}.total"] = sum(values)
        counters[f"{name}.switches"] = len(values)
    gauges = {parse_key(k)[0]: v for k, v in snap["gauges"].items()}
    return {"counters": counters, "gauges": gauges}


def workload(n: int):
    rng = np.random.default_rng(SEED)
    return random_well_nested(PAIRS, n, rng)


def measure(n: int, reps: int) -> dict:
    cset = workload(n)
    w = width(cset, CSTTopology.of(n))
    cfg = SchedulerConfig(validate_input=False)
    sched = PADRScheduler(config=cfg)
    best = float("inf")
    schedule = None
    for _ in range(reps):
        net = CSTNetwork.of_size(n)
        t0 = time.perf_counter()
        schedule = sched.schedule(cset, network=net)
        best = min(best, time.perf_counter() - t0)
    assert schedule is not None
    return {
        "n": n,
        "w": w,
        "engine": cfg.engine_cls(n).__name__,
        "wall_s": round(best, 6),
        "physical_messages": schedule.physical_messages,
        "logical_messages": schedule.control_messages,
        "metrics": registry_snapshot(cset, n),
    }


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_columnar(n: int, reps: int) -> dict:
    """One row of the ``"columnar"`` trajectory: fast vs columnar on the
    same workload, single-schedule (with and without a simulated network)
    and batched throughput over ``BATCH_B`` same-shape sets."""
    from repro.core.columnar import schedule_batch

    cset = workload(n)
    fast_cfg = SchedulerConfig(validate_input=False, engine="fast")
    col_cfg = SchedulerConfig(validate_input=False, engine="columnar")
    fast = PADRScheduler(config=fast_cfg)
    col = PADRScheduler(config=col_cfg)

    fast_s = _best_of(lambda: fast.schedule(cset, n_leaves=n), reps)
    col_s = _best_of(lambda: col.schedule(cset, n_leaves=n), reps)

    def timed_net(sched):
        net = CSTNetwork.of_size(n)
        t0 = time.perf_counter()
        sched.schedule(cset, network=net)
        return time.perf_counter() - t0

    net_fast_s = min(timed_net(fast) for _ in range(reps))
    net_col_s = min(timed_net(col) for _ in range(reps))

    csets = [cset] * BATCH_B
    solo_s = _best_of(
        lambda: [fast.schedule(c, n_leaves=n) for c in csets], max(1, reps - 1)
    )
    batch_s = _best_of(
        lambda: schedule_batch(csets, n_leaves=n, config=col_cfg), max(1, reps - 1)
    )
    return {
        "n": n,
        "single": {
            "fast_s": round(fast_s, 6),
            "columnar_s": round(col_s, 6),
            "speedup": round(fast_s / col_s, 3),
        },
        "single_with_network": {
            "fast_s": round(net_fast_s, 6),
            "columnar_s": round(net_col_s, 6),
            "speedup": round(net_fast_s / net_col_s, 3),
        },
        "batched": {
            "batch_size": BATCH_B,
            "solo_fast_s_per_schedule": round(solo_s / BATCH_B, 6),
            "batched_s_per_schedule": round(batch_s / BATCH_B, 6),
            "throughput_speedup": round(solo_s / batch_s, 3),
        },
    }


def columnar_smoke() -> int:
    """CI gate for the columnar kernel: exact parity + a perf floor.

    Parity: at ``SMOKE_PARITY_N`` leaves every mixed workload must
    serialize bit-identically under the fast and columnar engines.
    Perf: at ``SMOKE_PERF_N`` the columnar single-schedule path must be
    at least ``SMOKE_MIN_SPEEDUP``× the fast path — well under the ~2.9×
    measured on a quiet dev box, so shared CI hardware passes while a
    real kernel regression still trips the gate.
    """
    from repro.io import schedule_to_dict
    from repro.service import mixed_workloads

    failures = 0
    n = SMOKE_PARITY_N
    fast = PADRScheduler(config=SchedulerConfig(validate_input=False, engine="fast"))
    col = PADRScheduler(
        config=SchedulerConfig(validate_input=False, engine="columnar")
    )
    for i, cset in enumerate(mixed_workloads(n, 12, seed=SEED)):
        a = schedule_to_dict(fast.schedule(cset, n_leaves=n))
        b = schedule_to_dict(col.schedule(cset, n_leaves=n))
        if a != b:
            print(f"PARITY MISMATCH: workload {i} at n={n}", file=sys.stderr)
            failures += 1
    print(f"parity: 12 mixed workloads at n={n} bit-identical"
          if not failures else f"parity: {failures} mismatches")

    n = SMOKE_PERF_N
    cset = workload(n)
    fast_s = _best_of(lambda: fast.schedule(cset, n_leaves=n), 3)
    col_s = _best_of(lambda: col.schedule(cset, n_leaves=n), 3)
    speedup = fast_s / col_s
    status = "ok" if speedup >= SMOKE_MIN_SPEEDUP else "TOO SLOW"
    print(
        f"perf:   n={n}  fast {fast_s * 1e3:.2f} ms  columnar "
        f"{col_s * 1e3:.2f} ms  speedup {speedup:.2f}x "
        f"(floor {SMOKE_MIN_SPEEDUP}x)  {status}"
    )
    if speedup < SMOKE_MIN_SPEEDUP:
        failures += 1
    return 1 if failures else 0


def check_baseline(rows: list[dict], baseline_path: Path, tolerance: float) -> int:
    try:
        baseline = {r["n"]: r for r in json.loads(baseline_path.read_text())["rows"]}
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    failures = 0
    for row in rows:
        base = baseline.get(row["n"])
        if base is None:
            print(f"n={row['n']}: no baseline row, skipping")
            continue
        ratio = row["wall_s"] / base["wall_s"] if base["wall_s"] else float("inf")
        status = "ok"
        if ratio > tolerance:
            status = f"REGRESSION (> {tolerance:.1f}x)"
            failures += 1
        for key in ("logical_messages", "physical_messages"):
            if row[key] != base[key]:
                status = f"COUNT MISMATCH ({key}: {row[key]} vs {base[key]})"
                failures += 1
        # registry snapshots are deterministic too (timings are excluded).
        if "metrics" in base and row["metrics"]["counters"] != base["metrics"]["counters"]:
            status = "METRICS MISMATCH"
            failures += 1
        print(
            f"n={row['n']:>6}  wall {row['wall_s'] * 1e3:8.2f} ms  "
            f"baseline {base['wall_s'] * 1e3:8.2f} ms  ratio {ratio:5.2f}x  {status}"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"measure only the CI subset {SMOKE_SIZES} with fewer repetitions",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="compare against this BENCH_scaling.json instead of writing one",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="max wall-time ratio vs baseline before failing (default 2.0)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("results/BENCH_scaling.json"),
        help="where to write the measurement rows (ignored with --baseline)",
    )
    parser.add_argument(
        "--columnar-smoke",
        action="store_true",
        help="run only the columnar CI gate: bit-identical parity at "
        f"n={SMOKE_PARITY_N} and >= {SMOKE_MIN_SPEEDUP}x vs the fast path "
        f"at n={SMOKE_PERF_N}; exit 1 on failure",
    )
    args = parser.parse_args()

    if args.columnar_smoke:
        return columnar_smoke()

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    reps = 3 if args.smoke else 5
    rows = []
    for n in sizes:
        row = measure(n, reps)
        rows.append(row)
        print(
            f"n={n:>6}  w={row['w']:>3}  engine {row['engine']:<18}  "
            f"wall {row['wall_s'] * 1e3:8.2f} ms  "
            f"physical {row['physical_messages']:>8}  "
            f"logical {row['logical_messages']:>8}"
        )

    if args.baseline is not None:
        return check_baseline(rows, args.baseline, args.tolerance)

    # the columnar trajectory rides only on the full sweep; smoke runs
    # keep CI fast (the gate has its own --columnar-smoke entry point).
    columnar_rows = []
    if not args.smoke:
        for n in sizes:
            crow = measure_columnar(n, reps)
            columnar_rows.append(crow)
            print(
                f"n={n:>6}  columnar single {crow['single']['speedup']:5.2f}x  "
                f"w/net {crow['single_with_network']['speedup']:5.2f}x  "
                f"batched x{crow['batched']['batch_size']} "
                f"{crow['batched']['throughput_speedup']:5.2f}x"
            )

    # update in place: trajectories written by other suites (the service
    # layer's "service" key) must survive a perf re-run.
    payload = {}
    if args.output.exists():
        try:
            payload = json.loads(args.output.read_text())
        except (OSError, json.JSONDecodeError):
            payload = {}
    payload.update(
        {
            "format": "cst-padr/perf-scaling",
            "version": 2,
            "workload": {
                "pairs": PAIRS,
                "seed": SEED,
                "generator": "random_well_nested",
            },
            "rows": rows,
        }
    )
    if columnar_rows:
        payload["columnar"] = {
            "workload": {
                "pairs": PAIRS,
                "seed": SEED,
                "generator": "random_well_nested",
                "batch_size": BATCH_B,
            },
            "rows": columnar_rows,
        }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {len(rows)} rows to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
