#!/usr/bin/env python3
"""Time the PADR scheduler end-to-end across tree sizes.

Writes ``results/BENCH_scaling.json`` — one row per tree size with the
wall-clock time of a full ``PADRScheduler.schedule`` call (Phase 1 +
Phase-2 rounds + commits + transfers) on a sparse random well-nested set,
plus the logical (paper-model) and physical (simulator-walked) control
message counts, so the frontier-pruning savings are tracked alongside the
timing trajectory.

Each row also embeds a metrics-registry snapshot (``"metrics"``) from a
separate, *instrumented* run of the same workload — aggregate counters
and summary gauges only, per-switch families folded to max/total so the
file stays small.  The timed run stays uninstrumented, so the wall-clock
trajectory measures the same hot path as before.

Usage::

    PYTHONPATH=src python scripts/run_perf_suite.py            # full sweep
    PYTHONPATH=src python scripts/run_perf_suite.py --smoke    # CI subset
    PYTHONPATH=src python scripts/run_perf_suite.py --smoke \
        --baseline results/BENCH_scaling.json                  # regression gate

With ``--baseline`` each measured size is compared against the checked-in
baseline row; a wall-time regression worse than ``--tolerance`` (default
2.0×) fails the run with exit code 1.  Counts (logical/physical messages)
must match the baseline exactly — they are deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.comms.generators import random_well_nested
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.network import CSTNetwork
from repro.cst.topology import CSTTopology

#: full trajectory (2^6 .. 2^14) and the CI smoke subset.
FULL_SIZES = [2**k for k in range(6, 15)]
SMOKE_SIZES = [2**6, 2**8, 2**10]

#: sparse workload — fixed pair count keeps w ≪ n across the sweep.
PAIRS = 24
SEED = 7


def registry_snapshot(cset, n: int) -> dict:
    """Metrics from one instrumented (untimed) run, folded for archival.

    Per-switch counter families collapse to their max (the Theorem-8
    quantity) and total; nondeterministic spans are dropped so snapshots
    stay diffable across hosts.
    """
    from repro.obs import Instrumentation, MetricsRegistry
    from repro.obs.registry import parse_key

    obs = Instrumentation(MetricsRegistry(), run="csa")
    PADRScheduler(validate_input=False, obs=obs).schedule(
        cset, network=CSTNetwork.of_size(n)
    )
    snap = obs.metrics.snapshot()
    counters: dict[str, int] = {}
    per_switch: dict[str, list[int]] = {}
    for key, value in snap["counters"].items():
        name, labels = parse_key(key)
        if "switch" in labels:
            per_switch.setdefault(name, []).append(value)
        else:
            counters[name] = value
    for name, values in per_switch.items():
        counters[f"{name}.max_switch"] = max(values)
        counters[f"{name}.total"] = sum(values)
        counters[f"{name}.switches"] = len(values)
    gauges = {parse_key(k)[0]: v for k, v in snap["gauges"].items()}
    return {"counters": counters, "gauges": gauges}


def measure(n: int, reps: int) -> dict:
    rng = np.random.default_rng(SEED)
    cset = random_well_nested(PAIRS, n, rng)
    w = width(cset, CSTTopology.of(n))
    sched = PADRScheduler(validate_input=False)
    best = float("inf")
    schedule = None
    for _ in range(reps):
        net = CSTNetwork.of_size(n)
        t0 = time.perf_counter()
        schedule = sched.schedule(cset, network=net)
        best = min(best, time.perf_counter() - t0)
    assert schedule is not None
    return {
        "n": n,
        "w": w,
        "wall_s": round(best, 6),
        "physical_messages": schedule.physical_messages,
        "logical_messages": schedule.control_messages,
        "metrics": registry_snapshot(cset, n),
    }


def check_baseline(rows: list[dict], baseline_path: Path, tolerance: float) -> int:
    try:
        baseline = {r["n"]: r for r in json.loads(baseline_path.read_text())["rows"]}
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    failures = 0
    for row in rows:
        base = baseline.get(row["n"])
        if base is None:
            print(f"n={row['n']}: no baseline row, skipping")
            continue
        ratio = row["wall_s"] / base["wall_s"] if base["wall_s"] else float("inf")
        status = "ok"
        if ratio > tolerance:
            status = f"REGRESSION (> {tolerance:.1f}x)"
            failures += 1
        for key in ("logical_messages", "physical_messages"):
            if row[key] != base[key]:
                status = f"COUNT MISMATCH ({key}: {row[key]} vs {base[key]})"
                failures += 1
        # registry snapshots are deterministic too (timings are excluded).
        if "metrics" in base and row["metrics"]["counters"] != base["metrics"]["counters"]:
            status = "METRICS MISMATCH"
            failures += 1
        print(
            f"n={row['n']:>6}  wall {row['wall_s'] * 1e3:8.2f} ms  "
            f"baseline {base['wall_s'] * 1e3:8.2f} ms  ratio {ratio:5.2f}x  {status}"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"measure only the CI subset {SMOKE_SIZES} with fewer repetitions",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="compare against this BENCH_scaling.json instead of writing one",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="max wall-time ratio vs baseline before failing (default 2.0)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("results/BENCH_scaling.json"),
        help="where to write the measurement rows (ignored with --baseline)",
    )
    args = parser.parse_args()

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    reps = 3 if args.smoke else 5
    rows = []
    for n in sizes:
        row = measure(n, reps)
        rows.append(row)
        print(
            f"n={n:>6}  w={row['w']:>3}  wall {row['wall_s'] * 1e3:8.2f} ms  "
            f"physical {row['physical_messages']:>8}  "
            f"logical {row['logical_messages']:>8}"
        )

    if args.baseline is not None:
        return check_baseline(rows, args.baseline, args.tolerance)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "cst-padr/perf-scaling",
        "version": 2,
        "workload": {"pairs": PAIRS, "seed": SEED, "generator": "random_well_nested"},
        "rows": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {len(rows)} rows to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
