#!/usr/bin/env python3
"""Benchmark the multi-tree fabric: shard scaling on a skewed tenant mix.

Drives the streaming service over a :class:`~repro.fabric.FabricController`
with a skewed four-tenant workload (one hot tenant, a long tail — the
shape that makes sharding interesting) and measures settled-requests/
second as the forest grows 1 → 8 trees.  Every configuration must settle
*all* requests; the smoke gate additionally runs with live per-shard
parity (each payload re-checked against a direct in-process PADR run)
and reports the cross-shard ratio of a fabric-spanning global set.

Results append to ``results/BENCH_scaling.json`` under a top-level
``"fabric"`` key; the ``"service"`` / ``"streaming"`` / ``"columnar"`` /
``"rows"`` keys are untouched.

Usage::

    PYTHONPATH=src python scripts/run_fabric_bench.py            # full 1/2/4/8
    PYTHONPATH=src python scripts/run_fabric_bench.py --smoke    # CI gate
    PYTHONPATH=src python scripts/run_fabric_bench.py --enforce  # + 2x gate

The throughput-scaling assertion (4 shards >= 2x one shard) needs real
cores: it is gated on ``os.cpu_count() >= 4`` (or ``--enforce``), and
otherwise reported but not asserted — the recorded row always carries
the cpu count so readers can judge the number.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.comms.generators import random_well_nested
from repro.fabric import FabricController
from repro.service import (
    StreamRequest,
    StreamingSchedulerService,
    TenantQuota,
    mixed_workloads,
)

RESULTS = Path(__file__).resolve().parent.parent / "results" / "BENCH_scaling.json"

LEAF_WIDTH = 256
FULL_TREES = [1, 2, 4, 8]
FULL_COUNT = 96
SMOKE_COUNT = 32

#: the skewed four-tenant mix: tenant-0 takes half the stream.
TENANT_WEIGHTS = (("tenant-0", 10), ("tenant-1", 5), ("tenant-2", 3), ("tenant-3", 2))


def skewed_arrivals(count: int, *, seed: int) -> list[StreamRequest]:
    """``count`` mixed workloads at n=256 on a weighted tenant cycle."""
    csets = mixed_workloads(LEAF_WIDTH, count, seed=seed)
    cycle = [t for t, w in TENANT_WEIGHTS for _ in range(w)]
    return [
        StreamRequest(
            cset=cset,
            n_leaves=LEAF_WIDTH,
            deadline=100_000,
            tenant=cycle[i % len(cycle)],
        )
        for i, cset in enumerate(csets)
    ]


def run_fabric(trees: int, count: int, *, parity: bool, seed: int = 7) -> dict:
    """One timed configuration; returns the recorded row."""
    with FabricController(trees, LEAF_WIDTH) as fabric:
        service = StreamingSchedulerService(
            fabric=fabric,
            parity_check=parity,
            default_quota=TenantQuota(rate=10_000.0, burst=10_000.0),
            max_queue=count + 8,
            max_inflight=64,
        )
        # pay the per-shard fork cost outside the timed region: one tiny
        # warm-up request per tenant (different seed — no cache overlap).
        for req in skewed_arrivals(len(TENANT_WEIGHTS), seed=seed + 1):
            service.submit(req)
        service.run()

        arrivals = skewed_arrivals(count, seed=seed)
        for req in arrivals:
            service.submit(req)
        t0 = time.perf_counter()
        report = service.run()
        elapsed = time.perf_counter() - t0

        settled = report.n_done
        if settled < count:
            raise SystemExit(
                f"trees={trees}: only {settled}/{count} settled DONE — "
                f"{report.summary()}"
            )

        # the aggregation surface: a global set spanning the whole forest.
        rng = np.random.default_rng(seed)
        global_set = random_well_nested(32, trees * LEAF_WIDTH, rng)
        fs = fabric.schedule_global(global_set)

        return {
            "trees": trees,
            "leaf_width": LEAF_WIDTH,
            "requests": count,
            "cpu_count": os.cpu_count(),
            "parity_checked": parity,
            "elapsed_s": round(elapsed, 6),
            "requests_per_s": round(count / elapsed, 3) if elapsed else None,
            "shard_load": list(fabric.shard_load),
            "rebalances": fabric.rebalances,
            "cross_shard_ratio": round(fs.cross_ratio, 4),
            "cross_rounds": fs.cross_rounds,
            "total_rounds": fs.total_rounds,
        }


def run_full(args: argparse.Namespace) -> int:
    rows = []
    base_rps = None
    for trees in FULL_TREES:
        row = run_fabric(trees, args.count, parity=not args.no_parity)
        if base_rps is None:
            base_rps = row["requests_per_s"]
        row["speedup_vs_1"] = (
            round(row["requests_per_s"] / base_rps, 3) if base_rps else None
        )
        rows.append(row)
        print(
            f"trees={trees}: {row['elapsed_s']:.3f}s "
            f"({row['requests_per_s']} req/s, {row['speedup_vs_1']}x vs 1), "
            f"load {row['shard_load']}, "
            f"cross-shard ratio {row['cross_shard_ratio']}"
        )

    payload = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    payload["fabric"] = {
        "requests_per_run": args.count,
        "leaf_width": LEAF_WIDTH,
        "tenants": [t for t, _ in TENANT_WEIGHTS],
        "tenant_weights": [w for _, w in TENANT_WEIGHTS],
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    RESULTS.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote fabric trajectory to {RESULTS}")
    return 0


def run_smoke(args: argparse.Namespace) -> int:
    """The CI fabric gate: all-done + per-shard parity + reported ratio,
    with the 2x scaling assertion only where the hardware can show it."""
    one = run_fabric(1, SMOKE_COUNT, parity=True)
    four = run_fabric(4, SMOKE_COUNT, parity=True)

    failures = []
    loaded = sum(1 for load in four["shard_load"] if load)
    if loaded < 2:
        failures.append(f"4-tree fabric only loaded {loaded} shard(s): skew routing broken")
    print(
        f"smoke: 1-tree {one['requests_per_s']} req/s, "
        f"4-tree {four['requests_per_s']} req/s, "
        f"load {four['shard_load']}, "
        f"cross-shard ratio {four['cross_shard_ratio']} "
        f"({four['cross_rounds']} cross rounds of {four['total_rounds']})"
    )

    speedup = (
        four["requests_per_s"] / one["requests_per_s"]
        if one["requests_per_s"]
        else None
    )
    enforce = args.enforce or (os.cpu_count() or 1) >= 4
    if enforce:
        if speedup is None or speedup < 2:
            failures.append(
                f"4-shard throughput {speedup and round(speedup, 2)}x < 2x vs "
                f"1 shard ({os.cpu_count()} cpus)"
            )
    else:
        print(
            f"2x scaling gate skipped: {os.cpu_count()} cpu(s) available "
            f"(needs >= 4; use --enforce to assert anyway); "
            f"measured {speedup and round(speedup, 2)}x"
        )

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print("fabric smoke ok: all settled, per-shard parity green")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="run the CI gate")
    ap.add_argument("--count", type=int, default=FULL_COUNT)
    ap.add_argument("--no-parity", action="store_true")
    ap.add_argument(
        "--enforce",
        action="store_true",
        help="assert the 2x scaling gate even on < 4 cpus",
    )
    args = ap.parse_args(argv)
    return run_smoke(args) if args.smoke else run_full(args)


if __name__ == "__main__":
    sys.exit(main())
