#!/usr/bin/env python3
"""The canary promotion gate: record, replay, alert, decide.

Records a production-like streaming workload (arrival trace + tenant mix,
persisted through ``repro.io`` so the exact bytes are replayable), then
replays it three times through the streaming service with the SLO
burn-rate engine attached:

* **baseline**  — the current default ``SchedulerConfig``;
* **candidate** — a different engine configuration, with an in-service
  chaos drill armed mid-burst (a candidate must detect faults *while
  serving*, within its detection SLA);
* **regression** — the candidate deliberately throttled to one
  execution slot, simulating a slow build: the latency/availability
  SLOs must burn and the gate must refuse it.

The gate passes only if the candidate replay is bit-identically equal to
the baseline per request, raised zero SLO burn alerts, met the chaos
drill's detection/reroute SLAs and stayed within the p50/p99 regression
bounds — while the throttled replay is *refused* with at least one
detected burn alert (an alert pipeline that cannot see a real regression
is worse than none).  Results land under the ``"slo"`` key of
``results/BENCH_scaling.json`` (other keys untouched).

Usage::

    PYTHONPATH=src python scripts/run_canary.py            # full
    PYTHONPATH=src python scripts/run_canary.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SchedulerConfig
from repro.io import load_arrivals, save_arrivals
from repro.slo import (
    DrillSpec,
    default_slos,
    promotion_gate,
    record_workload,
    replay,
)

RESULTS = Path(__file__).resolve().parent.parent / "results" / "BENCH_scaling.json"

CANARY_LEAVES = 256
CANARY_ARRIVALS = 120
CANARY_DEADLINE = 96
LATENCY_BUDGET = 48  # ticks: the latency SLO's per-request bound
DETECTION_SLA = 4
REROUTE_SLA = 8
DRILL_TICK = 4
MAX_QUEUE = 200
MAX_INFLIGHT = 8


def run_canary(args: argparse.Namespace) -> int:
    count = CANARY_ARRIVALS if args.smoke else args.count
    candidates = ["columnar"] if args.smoke else ["fast", "columnar"]
    t0 = time.perf_counter()

    # 1. record the workload and round-trip it through the trace format —
    #    what replays is what the file holds, not what memory held.
    recorded = record_workload(
        n_leaves=CANARY_LEAVES, count=count, seed=7, deadline=CANARY_DEADLINE
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "canary_trace.json"
        save_arrivals(trace_path, recorded)
        arrivals = load_arrivals(trace_path)
    specs = default_slos(
        latency_budget=LATENCY_BUDGET, detection_sla=DETECTION_SLA
    )

    def run_one(label, config, *, inflight=MAX_INFLIGHT, drills=()):
        return replay(
            arrivals,
            label=label,
            config=config,
            specs=specs,
            drills=drills,
            max_queue=MAX_QUEUE,
            max_inflight=inflight,
            parity_check=True,
        )

    failures: list[str] = []

    # 2. the baseline replay (today's config) must itself be burn-free —
    #    a gate whose reference is on fire gates nothing.
    baseline = run_one("baseline", SchedulerConfig())
    print(f"baseline:   {baseline.report.summary()}")
    if baseline.alerts:
        failures.append(
            f"baseline replay raised {len(baseline.alerts)} SLO alert(s): "
            f"{baseline.alerts[0].message}"
        )

    # 3. healthy candidates: different engine, chaos drill armed mid-burst.
    gates = {}
    candidate_runs = {}
    for engine in candidates:
        candidate = run_one(
            f"candidate-{engine}",
            SchedulerConfig(engine=engine),
            drills=(
                DrillSpec(
                    tick=DRILL_TICK,
                    model="dead",
                    detection_sla=DETECTION_SLA,
                    reroute_sla=REROUTE_SLA,
                    seed=7,
                ),
            ),
        )
        candidate_runs[engine] = candidate
        decision = promotion_gate(baseline, candidate)
        gates[engine] = decision
        print(f"candidate:  {candidate.report.summary()}")
        for record in candidate.drills:
            print(
                f"  drill t{record.spec.tick} ({record.spec.model}): "
                f"victim {record.victim_id}, switch {record.fault_switch}, "
                f"detected={record.detected} in {record.detection_ticks} "
                f"tick(s) (SLA {record.spec.detection_sla}), rerouted in "
                f"{record.reroute_ticks} tick(s) (SLA {record.spec.reroute_sla})"
            )
        print(f"  {decision.summary()}")
        if not decision.promote:
            failures.append(f"healthy candidate refused: {decision.summary()}")
        if candidate.alerts:
            failures.append(
                f"candidate-{engine} raised {len(candidate.alerts)} alert(s)"
            )
        if not candidate.drills:
            failures.append(f"candidate-{engine}: chaos drill never ran")
        for record in candidate.drills:
            if not record.met_detection_sla:
                failures.append(
                    f"candidate-{engine}: drill missed detection SLA "
                    f"({record.detection_ticks} > {record.spec.detection_sla})"
                )
            if not record.met_reroute_sla:
                failures.append(
                    f"candidate-{engine}: drill missed reroute SLA "
                    f"({record.reroute_ticks} > {record.spec.reroute_sla})"
                )

    # 4. the injected regression: same candidate engine, execution budget
    #    throttled to one slot — queueing delay blows the latency SLO and
    #    the deadline tail the availability SLO.  The gate must refuse it
    #    on a *detected* burn alert.
    regression = run_one(
        "regression-throttled", SchedulerConfig(engine=candidates[-1]), inflight=1
    )
    reg_decision = promotion_gate(baseline, regression)
    print(f"regression: {regression.report.summary()}")
    if regression.alerts:
        first = regression.alerts[0]
        print(
            f"  first burn alert: tick {first.tick} {first.slo}/{first.window} "
            f"({first.severity.upper()}) — {first.message}"
        )
    print(f"  {reg_decision.summary()}")
    if not regression.alerts:
        failures.append(
            "throttled regression raised no burn alert — the alert engine "
            "cannot see a real regression"
        )
    if reg_decision.promote:
        failures.append("gate PROMOTED the throttled regression")

    elapsed = time.perf_counter() - t0

    # 5. archive the evidence (p50/p99 trajectories, alerts, drills, gates).
    payload = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    payload["slo"] = {
        "n": CANARY_LEAVES,
        "arrivals": count,
        "deadline_ticks": CANARY_DEADLINE,
        "latency_budget_ticks": LATENCY_BUDGET,
        "max_inflight": MAX_INFLIGHT,
        "max_queue": MAX_QUEUE,
        "cpu_count": os.cpu_count(),
        "wall_s": round(elapsed, 3),
        "baseline": baseline.to_dict(),
        "candidates": {
            engine: run.to_dict() for engine, run in candidate_runs.items()
        },
        "regression": regression.to_dict(),
        "gates": {engine: g.to_dict() for engine, g in gates.items()},
        "regression_gate": reg_decision.to_dict(),
    }
    RESULTS.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote slo trajectory to {RESULTS} ({elapsed:.2f}s wall)")

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI gate (one candidate engine)"
    )
    parser.add_argument(
        "--count", type=int, default=240, help="arrivals in full mode"
    )
    return run_canary(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
