#!/usr/bin/env python3
"""Seeded chaos campaigns against the fault-recovery loop.

Runs :func:`repro.recovery.run_campaign` — inject one reachable fault per
trial, let :class:`~repro.recovery.ResilientScheduler` detect, quarantine
and reroute, and tabulate detection accuracy and delivery rate per
(fault model × workload width) cell.

Usage::

    PYTHONPATH=src python scripts/run_chaos.py                  # full sweep
    PYTHONPATH=src python scripts/run_chaos.py --smoke          # CI gate
    PYTHONPATH=src python scripts/run_chaos.py --json out.json  # raw trials

``--smoke`` runs the fixed-seed acceptance campaign (64 leaves, widths
2/4/8) and fails with exit code 1 unless

* dead-switch and stuck-switch detection accuracy is 100%,
* misroute detection accuracy is at least 90%,
* every trial's delivered/undelivered split exactly partitions its input,
* the healthy-network control runs match the plain CSA bit for bit.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.analysis.comparison import format_table
from repro.obs import Instrumentation, MetricsRegistry
from repro.recovery import run_campaign

SMOKE_SEED = 2007  # IPPS 2007 — fixed so CI failures reproduce locally


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--leaves", type=int, default=64)
    parser.add_argument("--widths", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument(
        "--models",
        nargs="+",
        default=["dead", "stuck", "misroute"],
        choices=["dead", "stuck", "misroute"],
    )
    parser.add_argument("--trials", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fixed-seed acceptance campaign; non-zero exit on any gate miss",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write raw per-trial records and the metrics snapshot to PATH",
    )
    args = parser.parse_args(argv)

    seed = SMOKE_SEED if args.smoke else args.seed
    obs = Instrumentation(MetricsRegistry(), run="chaos")
    result = run_campaign(
        n_leaves=args.leaves,
        widths=tuple(args.widths),
        models=tuple(args.models),
        trials=args.trials,
        seed=seed,
        obs=obs,
    )

    print(
        f"chaos campaign: {args.leaves} leaves, widths {args.widths}, "
        f"seed={seed}, {len(result.trials)} faulted trials"
    )
    print(format_table(result.rows()))
    print(
        "healthy-control parity: "
        + ", ".join(
            f"w={w}:{'ok' if ok else 'MISMATCH'}"
            for w, ok in sorted(result.control_parity.items())
        )
    )
    print(f"partitions sound: {result.all_partitions_ok}")

    if args.json:
        payload = {
            "n_leaves": result.n_leaves,
            "seed": result.seed,
            "trials": [dataclasses.asdict(t) for t in result.trials],
            "control_parity": {str(k): v for k, v in result.control_parity.items()},
            "metrics": obs.metrics.snapshot(),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.json}")

    if args.smoke:
        gates = {
            "dead detection 100%": result.detection_accuracy("dead") == 1.0,
            "stuck detection 100%": result.detection_accuracy("stuck") == 1.0,
            "misroute detection >= 90%": result.detection_accuracy("misroute") >= 0.9,
            "partitions sound": result.all_partitions_ok,
            "healthy controls bit-identical": result.all_controls_ok,
        }
        failed = [name for name, ok in gates.items() if not ok]
        for name, ok in gates.items():
            print(f"  gate {'PASS' if ok else 'FAIL'}: {name}")
        if failed:
            print(f"SMOKE FAILED: {', '.join(failed)}")
            return 1
        print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
