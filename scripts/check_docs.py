#!/usr/bin/env python3
"""Keep the documentation honest: check code blocks, CLI refs and links.

Three checks over ``README.md`` and ``docs/*.md``:

1. every fenced ``python`` code block must at least *compile* (catches
   renamed symbols leaving stale ``import`` lines only at runtime, but
   syntax rot — the common drift mode — immediately); blocks containing
   doctest prompts (``>>>``) are run through :mod:`doctest` against the
   real ``repro`` package;
2. every ``cst-padr <subcommand>`` mention must name a subcommand the
   argument parser actually registers;
3. every relative markdown link must point at a file that exists.

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py

Exit code 0 when clean, 1 with one line per problem otherwise.  Wired
into CI (docs job) and tier-1 (``tests/test_docs.py``).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```(\w*)\s*$")
CLI_RE = re.compile(r"`?cst-padr\s+([a-z][a-z0-9-]*)")
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)#\s]+)\)")

#: docs the gate requires to exist — the glob below picks up anything in
#: docs/, but these named files failing to exist is itself drift (a doc
#: was deleted or renamed without updating the gate).
REQUIRED_DOCS = (
    "algorithm.md",
    "api.md",
    "architecture.md",
    "fabric.md",
    "fault_tolerance.md",
    "general_csets.md",
    "observability.md",
    "power_model.md",
    "reproduction_guide.md",
    "slo.md",
    "streaming.md",
)


def doc_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def missing_required_docs() -> list[str]:
    return [name for name in REQUIRED_DOCS if not (ROOT / "docs" / name).exists()]


def code_blocks(text: str) -> list[tuple[int, str, str]]:
    """(first line number, language, source) for each fenced block."""
    blocks = []
    lang = None
    start = 0
    buf: list[str] = []
    for i, line in enumerate(text.splitlines(), start=1):
        m = FENCE_RE.match(line)
        if m and lang is None:
            lang, start, buf = m.group(1) or "", i + 1, []
        elif line.strip() == "```" and lang is not None:
            blocks.append((start, lang, "\n".join(buf)))
            lang = None
        elif lang is not None:
            buf.append(line)
    return blocks


def registered_subcommands() -> set[str]:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:  # argparse keeps subparsers here
        if hasattr(action, "choices") and action.choices:
            return set(action.choices)
    raise AssertionError("CLI parser has no subcommands")


def check_file(path: Path, subcommands: set[str]) -> list[str]:
    problems = []
    text = path.read_text()
    rel = path.relative_to(ROOT)

    for lineno, lang, source in code_blocks(text):
        if lang != "python":
            continue
        if ">>>" in source:
            runner = doctest.DocTestRunner(verbose=False)
            test = doctest.DocTestParser().get_doctest(
                source, {}, str(rel), str(rel), lineno
            )
            runner.run(test)
            if runner.failures:
                problems.append(f"{rel}:{lineno}: doctest block failed")
            continue
        try:
            compile(source, f"{rel}:{lineno}", "exec")
        except SyntaxError as exc:
            problems.append(f"{rel}:{lineno}: python block does not compile: {exc.msg}")

    for m in CLI_RE.finditer(text):
        sub = m.group(1)
        if sub not in subcommands:
            line = text.count("\n", 0, m.start()) + 1
            problems.append(f"{rel}:{line}: unknown cst-padr subcommand '{sub}'")

    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        if not (path.parent / target).exists():
            line = text.count("\n", 0, m.start()) + 1
            problems.append(f"{rel}:{line}: broken link '{target}'")

    return problems


def main() -> int:
    problems = [
        f"docs/{name}: required doc is missing" for name in missing_required_docs()
    ]
    subcommands = registered_subcommands()
    for path in doc_files():
        problems.extend(check_file(path, subcommands))
    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        n = len(doc_files())
        print(f"docs ok: {n} files, subcommands {sorted(subcommands)}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
