#!/usr/bin/env python3
"""Profile one end-to-end PADR schedule under cProfile.

Prints the top-20 entries so hot spots in the wave engine / CONFIGURE /
commit path are visible without any external tooling.  This is the harness
that guided the fast-path work; keep using it before and after touching
anything on the hot path.

Usage::

    PYTHONPATH=src python scripts/profile_csa.py
    PYTHONPATH=src python scripts/profile_csa.py --n 16384 --width 64
    PYTHONPATH=src python scripts/profile_csa.py --engine columnar
    PYTHONPATH=src python scripts/profile_csa.py --sort tottime
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

import numpy as np

from repro.comms.generators import random_well_nested
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.cst.network import CSTNetwork


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=4096, help="tree size in leaves (default 4096)"
    )
    parser.add_argument(
        "--width",
        type=int,
        default=24,
        help="communication pairs to route (default 24; width ≤ pairs)",
    )
    parser.add_argument(
        "--engine",
        default="fast",
        choices=["reference", "fast", "columnar"],
        help="wave engine backend to profile (default fast)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=sorted(pstats.Stats.sort_arg_dict_default),
        help="pstats sort order (default cumulative)",
    )
    parser.add_argument(
        "--reps", type=int, default=10, help="schedule() calls to profile (default 10)"
    )
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    cset = random_well_nested(args.width, args.n, rng)
    sched = PADRScheduler(
        config=SchedulerConfig(validate_input=False, engine=args.engine)
    )
    networks = [CSTNetwork.of_size(args.n) for _ in range(args.reps)]

    def workload() -> None:
        for net in networks:
            sched.schedule(cset, network=net)

    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(20)
    return 0


if __name__ == "__main__":
    sys.exit(main())
