#!/usr/bin/env python3
"""Regenerate every registered experiment table into results/.

The tables written here are the machine-readable companions of
EXPERIMENTS.md — run this script after any algorithmic change and diff the
output to see which measured quantities moved.

Usage:  python scripts/regenerate_experiments.py [output_dir]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.analysis.comparison import format_table
from repro.experiments import REGISTRY


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)

    index_lines = ["# regenerated experiment tables", ""]
    for eid in sorted(REGISTRY):
        exp = REGISTRY[eid]
        t0 = time.perf_counter()
        rows = exp.run()
        elapsed = time.perf_counter() - t0
        body = f"{eid}: {exp.title}\n\n{format_table(rows)}\n"
        path = out_dir / f"{eid}.txt"
        path.write_text(body)
        index_lines.append(f"- {eid}: {exp.title} ({elapsed:.2f}s) -> {path.name}")
        print(f"[{elapsed:6.2f}s] {eid}")
    (out_dir / "INDEX.md").write_text("\n".join(index_lines) + "\n")
    print(f"\nwrote {len(REGISTRY)} tables to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
