#!/usr/bin/env python3
"""Benchmark the scheduling service layer against direct scheduling.

Measures, per tree size, the wall-clock throughput (requests/second) of

* ``direct``     — a plain ``PADRScheduler().schedule`` loop, one process,
                   no cache: the pre-service baseline;
* ``service``    — the ``SchedulerService`` inline path (admission +
                   canonicalisation + cache on a cold start);
* ``pooled``     — the service over a multiprocessing pool;
* ``resubmit``   — the same batch submitted again: every request is a
                   cache hit, measuring the canonical cache's speedup.

All service-path results are parity-checked against the direct scheduler
(bit-identical at the serialized level) while being timed — the benchmark
refuses to report fast-but-wrong numbers.  Results append to
``results/BENCH_scaling.json`` under a top-level ``"service"`` key (the
``"rows"`` trajectory consumed by ``run_perf_suite.py --baseline`` is
untouched).

Usage::

    PYTHONPATH=src python scripts/run_service_bench.py                 # full
    PYTHONPATH=src python scripts/run_service_bench.py --smoke         # CI gate
    PYTHONPATH=src python scripts/run_service_bench.py --stream-smoke  # CI gate
    PYTHONPATH=src python scripts/run_service_bench.py --enforce       # + 3x gate

The ``--smoke`` gate asserts the hardware-independent service contract:
64 mixed workloads at n=256, every request settles DONE, resubmission
cache hit-rate >= 50%, bit-identical parity throughout, and cache-hit
serving >= 20x faster than direct scheduling.  The pooled >= 3x speedup
at n=1024 is hardware-dependent (it needs >= 4 real cores); it is
asserted when ``os.cpu_count() >= 4`` or ``--enforce`` is given, and
otherwise reported but not gated — the recorded row always includes the
cpu count so readers can judge the number.

The ``--stream-smoke`` gate drives the *streaming* service through an
overload burst at n=256 with live parity checking and asserts the
admission contract: the machine reaches SOFT_RED or RED, sheds only
LOW-priority work (every NORMAL/HIGH request settles DONE), returns to
GREEN once the burst drains, and p99 latency stays under the tick
budget.  It records the p50/p99 trajectory under a ``"streaming"`` key
in ``results/BENCH_scaling.json`` (the ``"service"`` / ``"columnar"`` /
``"rows"`` keys are untouched).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.csa import PADRScheduler
from repro.io import schedule_to_dict
from repro.service import SchedulerService, mixed_workloads

RESULTS = Path(__file__).resolve().parent.parent / "results" / "BENCH_scaling.json"

FULL_SIZES = [256, 1024]
SMOKE_COUNT = 64
SMOKE_LEAVES = 256


def _time(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def bench_size(n_leaves: int, count: int, workers: int, parity: bool) -> dict:
    batch = mixed_workloads(n_leaves, count, seed=7)

    direct = PADRScheduler()
    direct_s, direct_schedules = _time(
        lambda: [direct.schedule(cs, n_leaves=n_leaves) for cs in batch]
    )

    # the timed service runs keep the in-band parity re-run OFF (it would
    # add one full direct schedule per request to the timed region);
    # parity is still asserted below, once, against the direct run above.
    with SchedulerService(workers=1, parity_check=False) as inline_svc:
        inline_s, inline_report = _time(lambda: inline_svc(batch, n_leaves=n_leaves))
        resubmit_s, resubmit_report = _time(
            lambda: inline_svc(batch, n_leaves=n_leaves)
        )

    with SchedulerService(workers=workers, parity_check=False) as pool_svc:
        pool_svc._ensure_pool()  # pay the fork cost outside the timed region
        pooled_s, pooled_report = _time(lambda: pool_svc(batch, n_leaves=n_leaves))

    for name, report in (
        ("service", inline_report),
        ("resubmit", resubmit_report),
        ("pooled", pooled_report),
    ):
        if report.n_done != count:
            raise SystemExit(
                f"n={n_leaves} {name}: only {report.n_done}/{count} done — "
                f"{report.summary()}"
            )

    if parity:
        expected = [schedule_to_dict(s) for s in direct_schedules]
        for name, report in (
            ("service", inline_report),
            ("resubmit", resubmit_report),
            ("pooled", pooled_report),
        ):
            got = [report.results[t].payload for t in sorted(report.schedules())]
            if got != expected:
                raise SystemExit(
                    f"n={n_leaves} {name}: schedules diverge from direct "
                    "scheduling — refusing to report timings"
                )

    return {
        "n": n_leaves,
        "requests": count,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "parity_checked": parity,
        "direct_s": round(direct_s, 6),
        "service_s": round(inline_s, 6),
        "pooled_s": round(pooled_s, 6),
        "resubmit_s": round(resubmit_s, 6),
        "pooled_speedup": round(direct_s / pooled_s, 3) if pooled_s else None,
        "cache_speedup": round(direct_s / resubmit_s, 3) if resubmit_s else None,
        "first_pass_hit_rate": round(inline_report.hit_rate, 3),
        "resubmit_hit_rate": round(resubmit_report.hit_rate, 3),
    }


def run_full(args: argparse.Namespace) -> int:
    workers = args.workers or min(4, os.cpu_count() or 1)
    rows = []
    for n in FULL_SIZES:
        row = bench_size(n, args.count, workers, parity=not args.no_parity)
        rows.append(row)
        print(
            f"n={row['n']:5d}: direct {row['direct_s']:.3f}s, "
            f"service {row['service_s']:.3f}s, "
            f"pooled({workers}w) {row['pooled_s']:.3f}s "
            f"[{row['pooled_speedup']}x], "
            f"resubmit {row['resubmit_s']:.4f}s [{row['cache_speedup']}x cached]"
        )

    payload = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    payload["service"] = {
        "requests_per_batch": args.count,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    RESULTS.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote service trajectory to {RESULTS}")

    failures = []
    big = rows[-1]
    if big["cache_speedup"] is not None and big["cache_speedup"] < 20:
        failures.append(
            f"cache-hit resubmission speedup {big['cache_speedup']}x < 20x at "
            f"n={big['n']}"
        )
    enforce_pool = args.enforce or (os.cpu_count() or 1) >= 4
    if enforce_pool and big["pooled_speedup"] is not None and big["pooled_speedup"] < 3:
        failures.append(
            f"pooled speedup {big['pooled_speedup']}x < 3x at n={big['n']} "
            f"({workers} workers, {os.cpu_count()} cpus)"
        )
    elif not enforce_pool:
        print(
            f"pooled >=3x gate skipped: {os.cpu_count()} cpu(s) available "
            f"(needs >= 4; use --enforce to assert anyway)"
        )
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def run_smoke(args: argparse.Namespace) -> int:
    """The CI service gate: hardware-independent contract only."""
    workers = args.workers or 2
    batch = mixed_workloads(SMOKE_LEAVES, SMOKE_COUNT, seed=7)

    with SchedulerService(workers=workers, parity_check=True) as service:
        first = service(batch, n_leaves=SMOKE_LEAVES)
        second = service(batch, n_leaves=SMOKE_LEAVES)

    direct = PADRScheduler()
    direct_s, direct_schedules = _time(
        lambda: [direct.schedule(cs, n_leaves=SMOKE_LEAVES) for cs in batch]
    )
    with SchedulerService(workers=1, parity_check=False) as warm:
        warm(batch, n_leaves=SMOKE_LEAVES)
        cached_s, cached_report = _time(lambda: warm(batch, n_leaves=SMOKE_LEAVES))

    failures = []
    if first.n_done != SMOKE_COUNT:
        failures.append(f"first pass: {first.summary()}")
    if second.n_done != SMOKE_COUNT:
        failures.append(f"resubmission: {second.summary()}")
    if second.hit_rate < 0.5:
        failures.append(f"resubmission hit-rate {second.hit_rate:.0%} < 50%")
    # explicit bit-identical parity, independent of the in-service check
    second_by_order = [second.results[t] for t in sorted(second.schedules())]
    expected = [schedule_to_dict(s) for s in direct_schedules]
    got = [r.payload for r in second_by_order]
    if expected != got:
        failures.append("serialized schedules diverge from direct scheduling")
    speedup = direct_s / cached_s if cached_s else float("inf")
    if speedup < 20:
        failures.append(f"cache-hit speedup {speedup:.1f}x < 20x")

    print(
        f"service smoke: {SMOKE_COUNT} workloads, n={SMOKE_LEAVES}, "
        f"workers={workers}"
    )
    print(f"  first:  {first.summary()}")
    print(f"  second: {second.summary()} (hit-rate {second.hit_rate:.0%})")
    print(
        f"  direct {direct_s:.3f}s vs cached {cached_s:.4f}s "
        f"({speedup:.0f}x), parity bit-identical: {expected == got}"
    )
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


STREAM_LEAVES = 256
STREAM_ARRIVALS = 120
STREAM_DEADLINE = 96
STREAM_P99_BUDGET = 64


def run_stream_smoke(args: argparse.Namespace) -> int:
    """The CI streaming gate: the overload-burst admission contract."""
    from repro.service import (
        AdmissionState,
        Priority,
        StreamRequest,
        StreamStatus,
        StreamingSchedulerService,
        TenantQuota,
    )

    priorities = [Priority.LOW, Priority.NORMAL, Priority.HIGH]
    csets = mixed_workloads(STREAM_LEAVES, 15, seed=7)
    # the burst: released over a few ticks so late arrivals meet the
    # pressure the early ones built — queue pressure, not quota, must
    # drive the state machine, so quotas are deliberately generous.
    arrivals = [
        StreamRequest(
            cset=csets[i % len(csets)],
            n_leaves=STREAM_LEAVES,
            release_time=i // 12,
            deadline=STREAM_DEADLINE,
            priority=priorities[i % 3],
            tenant=f"tenant-{i % 2}",
        )
        for i in range(STREAM_ARRIVALS)
    ]
    service = StreamingSchedulerService(
        max_queue=80,
        max_inflight=4,
        default_quota=TenantQuota(rate=64.0, burst=float(STREAM_ARRIVALS)),
        parity_check=True,  # live bit-identical assertion on every settle
    )
    elapsed, report = _time(lambda: service.run(arrivals))

    failures = []
    if len(report.results) != STREAM_ARRIVALS:
        failures.append(
            f"accounting hole: {len(report.results)}/{STREAM_ARRIVALS} "
            "requests settled"
        )
    if not (
        service.admission.reached(AdmissionState.SOFT_RED)
        or service.admission.reached(AdmissionState.RED)
    ):
        failures.append("burst never pushed admission past YELLOW")
    if report.n_shed == 0:
        failures.append("burst shed nothing — the drill is vacuous, retune it")
    if service.state is not AdmissionState.GREEN:
        failures.append(f"did not recover to GREEN (final {service.state.name})")
    dropped_above_low = {
        prio: n
        for status in (StreamStatus.SHED, StreamStatus.EXPIRED, StreamStatus.REJECTED)
        for prio, n in report.by_priority(status).items()
        if prio != "LOW"
    }
    if dropped_above_low:
        failures.append(f"non-LOW work dropped: {dropped_above_low}")
    done = report.by_priority(StreamStatus.DONE)
    for prio in ("NORMAL", "HIGH"):
        expected = sum(1 for r in arrivals if r.priority.name == prio)
        if done.get(prio, 0) != expected:
            failures.append(
                f"{prio}: {done.get(prio, 0)}/{expected} delivered"
            )
    if report.p99_ticks > STREAM_P99_BUDGET:
        failures.append(
            f"p99 {report.p99_ticks:.0f} ticks > budget {STREAM_P99_BUDGET}"
        )

    print(
        f"stream smoke: {STREAM_ARRIVALS} burst arrivals, n={STREAM_LEAVES}, "
        f"inflight=4, queue=80, parity=on ({elapsed:.2f}s wall)"
    )
    print(f"  {report.summary()}")
    trajectory = [(0, "GREEN"), *report.trajectory]
    print(
        "  trajectory: "
        + " -> ".join(f"{state}@t{tick}" for tick, state in trajectory)
    )
    print(f"  shed by priority: {report.by_priority(StreamStatus.SHED) or '{}'}")

    payload = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    payload["streaming"] = {
        "n": STREAM_LEAVES,
        "arrivals": STREAM_ARRIVALS,
        "max_inflight": 4,
        "max_queue": 80,
        "deadline_ticks": STREAM_DEADLINE,
        "cpu_count": os.cpu_count(),
        "wall_s": round(elapsed, 3),
        "p50_ticks": report.p50_ticks,
        "p99_ticks": report.p99_ticks,
        "ticks": report.ticks,
        "done": report.n_done,
        "shed": report.n_shed,
        "expired": report.n_expired,
        "cached": report.n_cached,
        "trajectory": [[tick, state] for tick, state in trajectory],
    }
    RESULTS.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote streaming trajectory to {RESULTS}")

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="CI service gate")
    parser.add_argument(
        "--stream-smoke",
        action="store_true",
        help="CI streaming gate: overload-burst admission contract",
    )
    parser.add_argument("--count", type=int, default=64, help="requests per batch")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--enforce",
        action="store_true",
        help="assert the pooled >=3x gate even on < 4 cpus",
    )
    parser.add_argument("--no-parity", action="store_true")
    args = parser.parse_args(argv)
    if args.stream_smoke:
        return run_stream_smoke(args)
    return run_smoke(args) if args.smoke else run_full(args)


if __name__ == "__main__":
    sys.exit(main())
